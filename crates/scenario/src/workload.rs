//! Workload batteries: composable, seeded schedules of host applications
//! and fault scripts.
//!
//! A [`Workload`] is pure data, like a topology: [`generate`] maps
//! `(battery kind, topology, seed)` to a list of scheduled
//! [`AppAction`]s (which hosts to create, where, running what, starting
//! when) plus a list of scheduled [`FaultAction`]s driving
//! `netsim::fault` mid-run. The runner materializes both.

use netsim::{FaultConfig, SimDuration, Xoshiro};
use switchlet::{ModuleBuilder, Op, Ty};

use crate::topo::Topology;

/// The built-in experiment batteries.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum BatteryKind {
    /// ICMP echo trains between far-apart and random segment pairs
    /// (exercises ARP, flooding, learning, the echo responder).
    Pings,
    /// A ttcp transfer across the diameter plus background blast pairs
    /// (exercises TcpLite, pacing, queueing).
    Streams,
    /// TFTP switchlet uploads to bridges with background traffic
    /// (exercises the loader path end to end).
    Uploads,
    /// Blasts and a ttcp transfer through a mid-run drop-fault window
    /// (exercises retransmission; loss invariants are waived while the
    /// fault is scripted).
    Churn,
}

impl BatteryKind {
    /// Every battery, in a stable order.
    pub const ALL: [BatteryKind; 4] = [
        BatteryKind::Pings,
        BatteryKind::Streams,
        BatteryKind::Uploads,
        BatteryKind::Churn,
    ];

    /// Short label for names and reports.
    pub fn label(&self) -> &'static str {
        match self {
            BatteryKind::Pings => "pings",
            BatteryKind::Streams => "streams",
            BatteryKind::Uploads => "uploads",
            BatteryKind::Churn => "churn",
        }
    }

    fn tag(&self) -> u64 {
        match self {
            BatteryKind::Pings => 1,
            BatteryKind::Streams => 2,
            BatteryKind::Uploads => 3,
            BatteryKind::Churn => 4,
        }
    }
}

/// One application to run, with its endpoints as segment indices.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AppAction {
    /// An ICMP echo train from a host on `from_seg` to one on `to_seg`.
    Ping {
        /// Pinger's segment.
        from_seg: usize,
        /// Echo responder's segment.
        to_seg: usize,
        /// Requests to send.
        count: u32,
        /// ICMP payload bytes.
        payload: usize,
        /// Inter-request interval.
        interval: SimDuration,
    },
    /// A ttcp transfer from `from_seg` to `to_seg`.
    Ttcp {
        /// Sender's segment.
        from_seg: usize,
        /// Receiver's segment.
        to_seg: usize,
        /// Bytes to move.
        total_bytes: u64,
        /// Application write size.
        write_size: usize,
    },
    /// A raw-frame blast from `from_seg` to a sink host on `to_seg`.
    Blast {
        /// Blaster's segment.
        from_seg: usize,
        /// Sink's segment.
        to_seg: usize,
        /// Frame payload size.
        size: usize,
        /// Frames to send.
        count: u64,
        /// Inter-frame interval.
        interval: SimDuration,
    },
    /// A TFTP switchlet upload from a host on `from_seg` to bridge
    /// `bridge` (the inert telemetry module from
    /// [`inert_upload_image`]).
    Upload {
        /// Uploader's segment.
        from_seg: usize,
        /// Target bridge index.
        bridge: usize,
    },
}

impl AppAction {
    /// Short label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            AppAction::Ping { .. } => "ping",
            AppAction::Ttcp { .. } => "ttcp",
            AppAction::Blast { .. } => "blast",
            AppAction::Upload { .. } => "upload",
        }
    }

    /// A conservative bound on how long the action takes once started.
    pub fn span(&self) -> SimDuration {
        match self {
            AppAction::Ping {
                count, interval, ..
            } => *interval * (*count as u64) + SimDuration::from_secs(2),
            AppAction::Ttcp { total_bytes, .. } => {
                // Worst case: a 10 Mb/s hop plus retransmission stalls.
                SimDuration::from_secs(15) + SimDuration::from_ms(total_bytes / 500)
            }
            AppAction::Blast {
                count, interval, ..
            } => *interval * *count + SimDuration::from_secs(2),
            AppAction::Upload { .. } => SimDuration::from_secs(5),
        }
    }
}

/// One scheduled application.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WorkItem {
    /// Start offset from the workload epoch (which the runner places
    /// after topology convergence).
    pub offset: SimDuration,
    /// What to run.
    pub action: AppAction,
}

/// One scheduled fault-script step.
#[derive(Clone, Debug)]
pub enum FaultAction {
    /// Install a fault configuration on a segment.
    Set {
        /// Target segment index.
        seg: usize,
        /// The configuration to install.
        fault: FaultConfig,
    },
    /// Restore a segment to fault-free operation.
    Clear {
        /// Target segment index.
        seg: usize,
    },
}

/// A generated battery: scheduled apps plus a fault script.
#[derive(Clone, Debug)]
pub struct Workload {
    /// Which battery generated this.
    pub kind: BatteryKind,
    /// Scheduled applications, in generation order.
    pub items: Vec<WorkItem>,
    /// Scheduled fault-script steps (offsets from the workload epoch).
    pub faults: Vec<(SimDuration, FaultAction)>,
}

impl Workload {
    /// Offset (from the workload epoch) by which everything scheduled —
    /// apps and fault script — should be finished.
    pub fn span(&self) -> SimDuration {
        let apps = self
            .items
            .iter()
            .map(|i| i.offset + i.action.span())
            .max()
            .unwrap_or(SimDuration::ZERO);
        let faults = self
            .faults
            .iter()
            .map(|(at, _)| *at + SimDuration::from_secs(1))
            .max()
            .unwrap_or(SimDuration::ZERO);
        apps.max(faults)
    }

    /// Does the script inject frame drops at any point?
    pub fn injects_drops(&self) -> bool {
        self.faults
            .iter()
            .any(|(_, f)| matches!(f, FaultAction::Set { fault, .. } if fault.drop_one_in > 0))
    }

    /// Does the script inject frame duplication at any point?
    pub fn injects_duplicates(&self) -> bool {
        self.faults
            .iter()
            .any(|(_, f)| matches!(f, FaultAction::Set { fault, .. } if fault.duplicate_one_in > 0))
    }
}

/// A distinct `(from, to)` segment pair: the far pair first, then seeded
/// random distinct pairs.
fn pick_pair(topo: &Topology, rng: &mut Xoshiro, nth: usize) -> (usize, usize) {
    if nth == 0 {
        return topo.far_pair();
    }
    let n = topo.segments.len() as u64;
    let a = rng.range(n) as usize;
    let mut b = rng.range(n) as usize;
    if a == b {
        b = (b + 1) % n as usize;
    }
    (a, b)
}

/// Generate the battery `kind` for `topo` from `seed`. Pure and
/// deterministic, like topology generation.
pub fn generate(kind: BatteryKind, topo: &Topology, seed: u64) -> Workload {
    let mut rng = Xoshiro::seed_from_u64(seed ^ (0x3A77_E21B_00C0_FFEE ^ kind.tag()));
    let mut items = Vec::new();
    let mut faults = Vec::new();
    match kind {
        BatteryKind::Pings => {
            for nth in 0..3 {
                let (from_seg, to_seg) = pick_pair(topo, &mut rng, nth);
                let payload = [64usize, 256, 512, 1024][rng.range(4) as usize];
                items.push(WorkItem {
                    offset: SimDuration::from_ms(50 * nth as u64),
                    action: AppAction::Ping {
                        from_seg,
                        to_seg,
                        count: 8,
                        payload,
                        interval: SimDuration::from_ms(50),
                    },
                });
            }
        }
        BatteryKind::Streams => {
            let (from_seg, to_seg) = pick_pair(topo, &mut rng, 0);
            items.push(WorkItem {
                offset: SimDuration::ZERO,
                action: AppAction::Ttcp {
                    from_seg,
                    to_seg,
                    total_bytes: 200_000,
                    write_size: 4096,
                },
            });
            for nth in 1..3 {
                let (from_seg, to_seg) = pick_pair(topo, &mut rng, nth);
                items.push(WorkItem {
                    offset: SimDuration::from_ms(100 * nth as u64),
                    action: AppAction::Blast {
                        from_seg,
                        to_seg,
                        size: 256 + rng.range(768) as usize,
                        count: 40 + rng.range(60),
                        interval: SimDuration::from_ms(1 + rng.range(2)),
                    },
                });
            }
        }
        BatteryKind::Uploads => {
            let n_uploads = 1 + rng.range(2) as usize;
            for nth in 0..n_uploads {
                let bridge = rng.range(topo.bridges.len() as u64) as usize;
                let from_seg = topo.bridges[bridge].segments[0];
                items.push(WorkItem {
                    offset: SimDuration::from_ms(200 * nth as u64),
                    action: AppAction::Upload { from_seg, bridge },
                });
            }
            let (from_seg, to_seg) = pick_pair(topo, &mut rng, 1);
            items.push(WorkItem {
                offset: SimDuration::from_ms(50),
                action: AppAction::Blast {
                    from_seg,
                    to_seg,
                    size: 128,
                    count: 50,
                    interval: SimDuration::from_ms(2),
                },
            });
        }
        BatteryKind::Churn => {
            // Long raw blasts span the whole fault window (their sinks
            // never speak, so the frames flood every segment — the lossy
            // patch always bites them; their loss is waived).
            for nth in 0..2 {
                let (from_seg, to_seg) = pick_pair(topo, &mut rng, nth);
                items.push(WorkItem {
                    offset: SimDuration::from_ms(100 + 200 * nth as u64),
                    action: AppAction::Blast {
                        from_seg,
                        to_seg,
                        size: 512,
                        count: 1600 + rng.range(200),
                        interval: SimDuration::from_ms(2),
                    },
                });
            }
            // The scripted fault window: a lossy patch in the middle of
            // the run, healed before evaluation.
            let victim = rng.range(topo.segments.len() as u64) as usize;
            faults.push((
                SimDuration::from_ms(500),
                FaultAction::Set {
                    seg: victim,
                    fault: FaultConfig {
                        drop_one_in: 12,
                        ..FaultConfig::default()
                    },
                },
            ));
            faults.push((
                SimDuration::from_secs(4),
                FaultAction::Clear { seg: victim },
            ));
            // After the heal, a reliable transfer must complete strictly:
            // churn is survivable, not just observable.
            let (from_seg, to_seg) = pick_pair(topo, &mut rng, 2);
            items.push(WorkItem {
                offset: SimDuration::from_ms(4_500),
                action: AppAction::Ttcp {
                    from_seg,
                    to_seg,
                    total_bytes: 100_000,
                    write_size: 4096,
                },
            });
        }
    }
    Workload {
        kind,
        items,
        faults,
    }
}

/// The world counter bumped by the inert upload module's `init`.
pub const UPLOAD_ALIVE_COUNTER: &str = "scenario.upload.alive";

/// A tiny valid VM switchlet image whose `init` bumps
/// [`UPLOAD_ALIVE_COUNTER`] and exits. It registers no switching
/// function, so uploading it exercises the whole TFTP → verify → link →
/// init path without perturbing the data plane.
pub fn inert_upload_image(tag: u32) -> Vec<u8> {
    let mut mb = ModuleBuilder::new(format!("scn_upload{tag}"));
    let i_bump = mb.import(
        "bridgectl",
        "counter_bump",
        Ty::func(vec![Ty::Str, Ty::Int], Ty::Unit),
    );
    let key = mb.intern_str(UPLOAD_ALIVE_COUNTER.as_bytes());
    let mut init = mb.func("init", vec![], Ty::Unit);
    init.op(Op::ConstStr(key))
        .op(Op::ConstInt(1))
        .op(Op::CallImport(i_bump))
        .op(Op::Return);
    let init_fn = mb.finish(init);
    mb.set_init(init_fn);
    mb.build().encode()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topo::{generate as gen_topo, TopologyShape};

    #[test]
    fn batteries_are_deterministic() {
        let topo = gen_topo(TopologyShape::Ring { bridges: 4 }, 7);
        for kind in BatteryKind::ALL {
            let a = generate(kind, &topo, 7);
            let b = generate(kind, &topo, 7);
            assert_eq!(a.items, b.items, "{kind:?} items must replay");
            assert!(!a.items.is_empty());
        }
    }

    #[test]
    fn churn_scripts_a_heal_before_span_end() {
        let topo = gen_topo(TopologyShape::Line { bridges: 3 }, 3);
        let wl = generate(BatteryKind::Churn, &topo, 3);
        assert!(wl.injects_drops());
        assert!(!wl.injects_duplicates());
        let clear_at = wl
            .faults
            .iter()
            .find_map(|(at, f)| matches!(f, FaultAction::Clear { .. }).then_some(*at))
            .expect("churn clears its fault");
        assert!(clear_at < wl.span());
    }

    #[test]
    fn upload_image_is_loadable() {
        let image = inert_upload_image(0);
        assert!(switchlet::Module::decode(&image).is_ok());
    }
}
