//! A tiny, dependency-free JSON document model with deterministic output.
//!
//! Reports must be byte-identical across runs with the same seed, so the
//! emitter keeps object members in insertion order (no hashing anywhere)
//! and the runner sticks to integers, booleans and strings — no float
//! formatting is ever on the byte-equality path.

use std::fmt::Write as _;

/// A JSON value. Objects preserve insertion order.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// An unsigned integer (counters, nanosecond times).
    U64(u64),
    /// A signed integer.
    I64(i64),
    /// A float — for bench artifacts that carry rates and ratios.
    /// Scenario reports stick to integers so no float formatting is on
    /// their byte-equality path; bench JSON is compared numerically, not
    /// byte-wise. Rendered with Rust's shortest-round-trip formatting
    /// (deterministic for a given value); non-finite values render as
    /// `null`.
    F64(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, members in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// An object from `(key, value)` pairs.
    pub fn obj(members: Vec<(&str, Json)>) -> Json {
        Json::Obj(
            members
                .into_iter()
                .map(|(k, v)| (k.to_owned(), v))
                .collect(),
        )
    }

    /// A string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Fetch a member of an object by key (for tests and summaries).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a float, if it is any numeric variant (what bench
    /// gates read — they consume the emitted document's numeric fields,
    /// not the display strings).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::U64(n) => Some(*n as f64),
            Json::I64(n) => Some(*n as f64),
            Json::F64(n) => Some(*n),
            _ => None,
        }
    }

    /// Render compactly (no whitespace).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Render with two-space indentation.
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::U64(n) => {
                let _ = write!(out, "{n}");
            }
            Json::I64(n) => {
                let _ = write!(out, "{n}");
            }
            Json::F64(n) => {
                if n.is_finite() {
                    let _ = write!(out, "{n}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                write_seq(out, indent, depth, '[', ']', items.len(), |out, i| {
                    items[i].write(out, indent, depth + 1)
                });
            }
            Json::Obj(members) => {
                write_seq(out, indent, depth, '{', '}', members.len(), |out, i| {
                    let (k, v) = &members[i];
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                });
            }
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(width) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(width * (depth + 1)));
        }
        item(out, i);
    }
    if len > 0 {
        if let Some(width) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(width * depth));
        }
    }
    out.push(close);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_compact_in_insertion_order() {
        let doc = Json::obj(vec![
            ("z", Json::U64(1)),
            ("a", Json::Arr(vec![Json::Bool(true), Json::Null])),
            ("s", Json::str("hi\"there\n")),
        ]);
        assert_eq!(doc.render(), r#"{"z":1,"a":[true,null],"s":"hi\"there\n"}"#);
    }

    #[test]
    fn pretty_round_trips_structure() {
        let doc = Json::obj(vec![("k", Json::Arr(vec![Json::I64(-3)]))]);
        let pretty = doc.render_pretty();
        assert!(pretty.contains("\"k\": [\n"));
        assert!(pretty.ends_with("}\n"));
    }

    #[test]
    fn get_finds_members() {
        let doc = Json::obj(vec![("x", Json::U64(7))]);
        assert_eq!(doc.get("x"), Some(&Json::U64(7)));
        assert_eq!(doc.get("y"), None);
    }

    #[test]
    fn floats_render_numerically_and_read_back() {
        let doc = Json::obj(vec![
            ("rate", Json::F64(12.25)),
            ("whole", Json::F64(3.0)),
            ("bad", Json::F64(f64::NAN)),
        ]);
        assert_eq!(doc.render(), r#"{"rate":12.25,"whole":3,"bad":null}"#);
        assert_eq!(doc.get("rate").unwrap().as_f64(), Some(12.25));
        assert_eq!(Json::U64(4).as_f64(), Some(4.0));
        assert_eq!(Json::str("4").as_f64(), None);
    }
}
