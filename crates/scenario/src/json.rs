//! A tiny, dependency-free JSON document model with deterministic output.
//!
//! Reports must be byte-identical across runs with the same seed, so the
//! emitter keeps object members in insertion order (no hashing anywhere)
//! and the runner sticks to integers, booleans and strings — no float
//! formatting is ever on the byte-equality path.

use std::fmt::Write as _;

/// A JSON value. Objects preserve insertion order.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// An unsigned integer (counters, nanosecond times).
    U64(u64),
    /// A signed integer.
    I64(i64),
    /// A float — for bench artifacts that carry rates and ratios.
    /// Scenario reports stick to integers so no float formatting is on
    /// their byte-equality path; bench JSON is compared numerically, not
    /// byte-wise. Rendered with Rust's shortest-round-trip formatting
    /// (deterministic for a given value); non-finite values render as
    /// `null`.
    F64(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, members in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// An object from `(key, value)` pairs.
    pub fn obj(members: Vec<(&str, Json)>) -> Json {
        Json::Obj(
            members
                .into_iter()
                .map(|(k, v)| (k.to_owned(), v))
                .collect(),
        )
    }

    /// A string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Fetch a member of an object by key (for tests and summaries).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a float, if it is any numeric variant (what bench
    /// gates read — they consume the emitted document's numeric fields,
    /// not the display strings).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::U64(n) => Some(*n as f64),
            Json::I64(n) => Some(*n as f64),
            Json::F64(n) => Some(*n),
            _ => None,
        }
    }

    /// Render compactly (no whitespace).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Render with two-space indentation.
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::U64(n) => {
                let _ = write!(out, "{n}");
            }
            Json::I64(n) => {
                let _ = write!(out, "{n}");
            }
            Json::F64(n) => {
                if n.is_finite() {
                    let _ = write!(out, "{n}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                write_seq(out, indent, depth, '[', ']', items.len(), |out, i| {
                    items[i].write(out, indent, depth + 1)
                });
            }
            Json::Obj(members) => {
                write_seq(out, indent, depth, '{', '}', members.len(), |out, i| {
                    let (k, v) = &members[i];
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                });
            }
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            // Control characters below 0x20 must be escaped per the JSON
            // grammar; DEL (0x7F) is legal raw but invisible in terminals
            // and diffs, so it is escaped too — reports are meant to be
            // read and byte-compared by humans and CI alike.
            c if (c as u32) < 0x20 || c == '\u{7f}' => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(width) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(width * (depth + 1)));
        }
        item(out, i);
    }
    if len > 0 {
        if let Some(width) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(width * depth));
        }
    }
    out.push(close);
}

// ----------------------------------------------------------------- parsing

impl Json {
    /// Parse a JSON document (what the offline `ab_scenario analyze`
    /// subcommand does to a sweep artifact). Numbers become `U64` when
    /// they are non-negative integers that fit, `I64` when negative
    /// integers that fit, and `F64` otherwise; objects keep member
    /// order. Trailing non-whitespace is an error.
    pub fn parse(input: &str) -> Result<Json, String> {
        let bytes = input.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing data at byte {pos}"));
        }
        Ok(value)
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while let Some(&b) = bytes.get(*pos) {
        if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
            *pos += 1;
        } else {
            break;
        }
    }
}

fn expect(bytes: &[u8], pos: &mut usize, what: u8) -> Result<(), String> {
    if bytes.get(*pos) == Some(&what) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {}", char::from(what), *pos))
    }
}

fn eat_keyword(bytes: &[u8], pos: &mut usize, word: &str) -> bool {
    if bytes[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        true
    } else {
        false
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_owned()),
        Some(b'n') if eat_keyword(bytes, pos, "null") => Ok(Json::Null),
        Some(b't') if eat_keyword(bytes, pos, "true") => Ok(Json::Bool(true)),
        Some(b'f') if eat_keyword(bytes, pos, "false") => Ok(Json::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut members = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(members));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, b':')?;
                members.push((key, parse_value(bytes, pos)?));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(members));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
                }
            }
        }
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_owned()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        *pos += 1;
                        let hi = parse_hex4(bytes, pos)?;
                        let c = if (0xD800..0xDC00).contains(&hi) {
                            // Surrogate pair.
                            if bytes.get(*pos) != Some(&b'\\') || bytes.get(*pos + 1) != Some(&b'u')
                            {
                                return Err(format!("lone surrogate at byte {}", *pos));
                            }
                            *pos += 2;
                            let lo = parse_hex4(bytes, pos)?;
                            let code =
                                0x10000 + ((hi - 0xD800) << 10) + (lo.wrapping_sub(0xDC00) & 0x3FF);
                            char::from_u32(code)
                        } else {
                            char::from_u32(hi)
                        };
                        out.push(c.ok_or_else(|| format!("bad \\u escape at byte {}", *pos))?);
                        continue; // pos already past the escape
                    }
                    other => return Err(format!("bad escape {other:?} at byte {}", *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (input is &str, so boundaries
                // are sound).
                let rest = core::str::from_utf8(&bytes[*pos..]).map_err(|e| e.to_string())?;
                let c = rest.chars().next().expect("non-empty");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_hex4(bytes: &[u8], pos: &mut usize) -> Result<u32, String> {
    let chunk = bytes
        .get(*pos..*pos + 4)
        .ok_or_else(|| format!("truncated \\u escape at byte {}", *pos))?;
    let s = core::str::from_utf8(chunk).map_err(|e| e.to_string())?;
    let v = u32::from_str_radix(s, 16).map_err(|e| format!("bad \\u escape: {e}"))?;
    *pos += 4;
    Ok(v)
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut float = false;
    while let Some(&b) = bytes.get(*pos) {
        match b {
            b'0'..=b'9' => *pos += 1,
            b'.' | b'e' | b'E' | b'+' | b'-' => {
                float = true;
                *pos += 1;
            }
            _ => break,
        }
    }
    let text = core::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
    if text.is_empty() || text == "-" {
        return Err(format!("expected a value at byte {start}"));
    }
    if !float {
        if let Ok(u) = text.parse::<u64>() {
            return Ok(Json::U64(u));
        }
        if let Ok(i) = text.parse::<i64>() {
            return Ok(Json::I64(i));
        }
    }
    text.parse::<f64>()
        .map(Json::F64)
        .map_err(|e| format!("bad number {text:?}: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_compact_in_insertion_order() {
        let doc = Json::obj(vec![
            ("z", Json::U64(1)),
            ("a", Json::Arr(vec![Json::Bool(true), Json::Null])),
            ("s", Json::str("hi\"there\n")),
        ]);
        assert_eq!(doc.render(), r#"{"z":1,"a":[true,null],"s":"hi\"there\n"}"#);
    }

    #[test]
    fn pretty_round_trips_structure() {
        let doc = Json::obj(vec![("k", Json::Arr(vec![Json::I64(-3)]))]);
        let pretty = doc.render_pretty();
        assert!(pretty.contains("\"k\": [\n"));
        assert!(pretty.ends_with("}\n"));
    }

    #[test]
    fn get_finds_members() {
        let doc = Json::obj(vec![("x", Json::U64(7))]);
        assert_eq!(doc.get("x"), Some(&Json::U64(7)));
        assert_eq!(doc.get("y"), None);
    }

    #[test]
    fn floats_render_numerically_and_read_back() {
        let doc = Json::obj(vec![
            ("rate", Json::F64(12.25)),
            ("whole", Json::F64(3.0)),
            ("bad", Json::F64(f64::NAN)),
        ]);
        assert_eq!(doc.render(), r#"{"rate":12.25,"whole":3,"bad":null}"#);
        assert_eq!(doc.get("rate").unwrap().as_f64(), Some(12.25));
        assert_eq!(Json::U64(4).as_f64(), Some(4.0));
        assert_eq!(Json::str("4").as_f64(), None);
    }

    #[test]
    fn control_chars_and_del_are_escaped() {
        let doc = Json::str("a\u{0}b\u{1f}c\u{7f}d\u{80}");
        // NUL and 0x1F use \u escapes, DEL is escaped for report
        // readability, and 0x80 (legal, printable-range) passes through.
        assert_eq!(doc.render(), "\"a\\u0000b\\u001fc\\u007fd\u{80}\"");
        // Named short escapes stay short.
        assert_eq!(Json::str("\n\r\t").render(), r#""\n\r\t""#);
        // And everything escaped reads back to the original string.
        let round = Json::parse(&doc.render()).expect("valid");
        assert_eq!(round, doc);
    }

    #[test]
    fn empty_containers_render_closed_in_pretty_mode() {
        // An empty object/array must not emit a dangling indented
        // newline: `{}` and `[]`, not `{\n}`.
        let doc = Json::obj(vec![("o", Json::Obj(vec![])), ("a", Json::Arr(vec![]))]);
        assert_eq!(doc.render(), r#"{"o":{},"a":[]}"#);
        let pretty = doc.render_pretty();
        assert!(pretty.contains("\"o\": {}"), "pretty was {pretty:?}");
        assert!(pretty.contains("\"a\": []"), "pretty was {pretty:?}");
        assert_eq!(Json::Obj(vec![]).render_pretty(), "{}\n");
        assert_eq!(Json::Arr(vec![]).render_pretty(), "[]\n");
    }

    #[test]
    fn large_floats_survive_render_and_read_back() {
        // Rust's float Display is shortest-round-trip, so even extreme
        // magnitudes must come back bit-exact through render → parse →
        // as_f64 (the bench gates consume these fields numerically).
        for v in [1e300, -1e300, f64::MAX, f64::MIN_POSITIVE, 1.7e-12] {
            let doc = Json::obj(vec![("v", Json::F64(v))]);
            let parsed = Json::parse(&doc.render()).expect("valid JSON");
            assert_eq!(parsed.get("v").unwrap().as_f64(), Some(v), "value {v}");
        }
    }

    #[test]
    fn parser_round_trips_documents() {
        let doc = Json::obj(vec![
            ("u", Json::U64(u64::MAX)),
            ("i", Json::I64(-42)),
            ("f", Json::F64(2.5)),
            ("s", Json::str("esc \"\\ \n ünï")),
            ("n", Json::Null),
            ("b", Json::Bool(false)),
            (
                "nest",
                Json::Arr(vec![Json::Obj(vec![]), Json::Arr(vec![Json::U64(1)])]),
            ),
        ]);
        assert_eq!(Json::parse(&doc.render()), Ok(doc.clone()));
        // Pretty whitespace parses to the same document.
        assert_eq!(Json::parse(&doc.render_pretty()), Ok(doc));
    }

    #[test]
    fn parser_maps_number_variants() {
        assert_eq!(Json::parse("18446744073709551615"), Ok(Json::U64(u64::MAX)));
        assert_eq!(Json::parse("-9"), Ok(Json::I64(-9)));
        assert_eq!(Json::parse("1.5"), Ok(Json::F64(1.5)));
        assert_eq!(Json::parse("1e3"), Ok(Json::F64(1000.0)));
    }

    #[test]
    fn parser_handles_unicode_escapes() {
        // A BMP \u escape.
        assert_eq!(Json::parse("\"\\u0041\""), Ok(Json::str("A")));
        // A surrogate pair decodes to one scalar (U+1F600), and raw
        // UTF-8 passes straight through.
        assert_eq!(
            Json::parse("\"\\ud83d\\ude00\""),
            Ok(Json::str("\u{1F600}"))
        );
        assert_eq!(Json::parse("\"\u{1F600}\""), Ok(Json::str("\u{1F600}")));
        assert!(Json::parse("\"\\ud83d\"").is_err(), "lone surrogate");
    }

    #[test]
    fn parser_rejects_malformed_documents() {
        for bad in ["", "{", "[1,", "{\"k\":}", "tru", "1 2", "\"open", "--1"] {
            assert!(Json::parse(bad).is_err(), "{bad:?} must not parse");
        }
    }
}
