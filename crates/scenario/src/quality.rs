//! Experience-quality scoring: fold a scenario's per-flow metric
//! sketches into 0–100 subscores (latency, loss, fairness, degradation)
//! and one overall number — the `netmeasure2`-style verdict the paper's
//! "does the network still *behave well*?" question needs, beyond the
//! boolean invariants.
//!
//! Everything here is integer arithmetic over the deterministic
//! [`Sketch`](crate::sketch::Sketch) statistics, so scores are on the
//! byte-equality path: the same scenario scores identically on every
//! run and every `--jobs` value.
//!
//! A flow that measured nothing is **missing**, never zero-cost: an
//! invalid measurement scores 0 where it proves the experience was bad
//! (a ping with no replies) and is skipped where it proves nothing (a
//! baseline that never ran cannot anchor a degradation ratio).

use crate::json::Json;
use crate::runner::{AppReport, Report};
use crate::sketch::log2_fp;
use crate::workload::Phase;

/// p90 RTT at or below this scores a full 100 on latency.
const LATENCY_GOOD_NS: u64 = 500_000; // 500 us — a few bridged 100 Mb/s hops
/// p90 RTT at or above this scores 0 on latency.
const LATENCY_BAD_NS: u64 = 50_000_000; // 50 ms — interactively hopeless

/// The quality subscores of one scenario. Each is 0–100, `None` when
/// the scenario ran no flow that could measure it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct QualityScore {
    /// Ping p90 RTTs, log-mapped between [`LATENCY_GOOD_NS`] and
    /// [`LATENCY_BAD_NS`]; a ping flow with zero replies scores 0.
    pub latency: Option<u64>,
    /// Mean delivered fraction across all flows that expected delivery.
    pub loss: Option<u64>,
    /// Jain fairness index over the flows' delivery ratios (needs ≥ 2
    /// flows).
    pub fairness: Option<u64>,
    /// Baseline-vs-loaded probe comparison: how gracefully the network
    /// degraded under scripted load or faults.
    pub degradation: Option<u64>,
    /// Floor mean of the present subscores.
    pub overall: Option<u64>,
    /// Informational: frames that had to queue behind a busy medium.
    pub contended_frames: u64,
    /// Informational: the deepest transmit queue any segment reached.
    pub peak_queue: u64,
}

/// Map a p90 RTT onto 0–100, logarithmically: every doubling of RTT
/// costs the same number of points, anchored at
/// [`LATENCY_GOOD_NS`] → 100 and [`LATENCY_BAD_NS`] → 0.
fn latency_points(p90_ns: u64) -> u64 {
    let good = log2_fp(LATENCY_GOOD_NS);
    let bad = log2_fp(LATENCY_BAD_NS);
    let x = log2_fp(p90_ns).clamp(good, bad);
    (bad - x) * 100 / (bad - good)
}

/// Floor mean of a score list; `None` when empty.
fn mean(scores: &[u64]) -> Option<u64> {
    if scores.is_empty() {
        None
    } else {
        Some(scores.iter().sum::<u64>() / scores.len() as u64)
    }
}

/// Score a scenario's flows. Exposed separately from [`score_report`]
/// so tests can drive it with hand-built [`AppReport`]s.
pub fn score_apps(apps: &[AppReport]) -> QualityScore {
    // Latency: one score per ping flow. An invalid flow (no replies)
    // has no p90 and scores 0 — missing data is evidence of a bad
    // experience here, not a free pass.
    let latency_scores: Vec<u64> = apps
        .iter()
        .filter(|a| a.metrics.kind == "rtt")
        .map(|a| a.metrics.p90_ns().map(latency_points).unwrap_or(0))
        .collect();

    // Loss: mean delivered fraction over every flow that expected
    // delivery (ratios above 1000 — duplicated frames — clamp to full).
    let deliveries: Vec<u64> = apps
        .iter()
        .filter_map(|a| a.metrics.delivery_pm)
        .map(|pm| pm.min(1000))
        .collect();
    let loss_scores: Vec<u64> = deliveries.iter().map(|pm| pm / 10).collect();

    // Fairness: Jain's index (Σx)² / (n·Σx²) over the delivery ratios,
    // scaled to 0–100. Needs at least two flows to mean anything; if
    // every flow delivered nothing the flows are equal and the index
    // is taken at its maximum.
    let fairness = if deliveries.len() < 2 {
        None
    } else {
        let n = deliveries.len() as u64;
        let sum: u64 = deliveries.iter().sum();
        let sumsq: u64 = deliveries.iter().map(|x| x * x).sum();
        Some(if sumsq == 0 {
            100
        } else {
            sum * sum * 100 / (n * sumsq)
        })
    };

    // Degradation: pair each baseline probe with its loaded re-run (in
    // report order) and score the pair by how much slower and lossier
    // the loaded phase was. A loaded probe that measured nothing scores
    // 0 (the network broke under load); a baseline that measured
    // nothing anchors nothing and skips the pair.
    let baselines = apps.iter().filter(|a| a.phase == Phase::Baseline);
    let loadeds = apps.iter().filter(|a| a.phase == Phase::Loaded);
    let mut degradation_scores = Vec::new();
    for (base, load) in baselines.zip(loadeds) {
        let Some(base_p90) = base.metrics.p90_ns() else {
            continue;
        };
        let Some(load_p90) = load.metrics.p90_ns() else {
            degradation_scores.push(0);
            continue;
        };
        let slowdown = (base_p90 * 100 / load_p90.max(1)).min(100);
        let delivered = load.metrics.delivery_pm.unwrap_or(0).min(1000);
        degradation_scores.push(slowdown * delivered / 1000);
    }

    let latency = mean(&latency_scores);
    let loss = mean(&loss_scores);
    let degradation = mean(&degradation_scores);
    let present: Vec<u64> = [latency, loss, fairness, degradation]
        .into_iter()
        .flatten()
        .collect();
    QualityScore {
        latency,
        loss,
        fairness,
        degradation,
        overall: mean(&present),
        contended_frames: 0,
        peak_queue: 0,
    }
}

/// Score a full scenario report: the flow subscores plus the wire-level
/// contention evidence.
pub fn score_report(report: &Report) -> QualityScore {
    let mut q = score_apps(&report.apps);
    q.contended_frames = report
        .world
        .segments
        .iter()
        .map(|s| s.counters.contended)
        .sum();
    q.peak_queue = report
        .world
        .segments
        .iter()
        .map(|s| s.counters.peak_queue)
        .max()
        .unwrap_or(0);
    q
}

impl QualityScore {
    /// Render as the report's `quality` section.
    pub fn to_json(&self) -> Json {
        let score = |v: Option<u64>| v.map(Json::U64).unwrap_or(Json::Null);
        Json::obj(vec![
            ("latency", score(self.latency)),
            ("loss", score(self.loss)),
            ("fairness", score(self.fairness)),
            ("degradation", score(self.degradation)),
            ("overall", score(self.overall)),
            ("contended_frames", Json::U64(self.contended_frames)),
            ("peak_queue", Json::U64(self.peak_queue)),
        ])
    }

    /// Rebuild from a report's `quality` section (the offline analyzer
    /// path). Returns `None` on structural mismatch.
    pub fn from_json(json: &Json) -> Option<QualityScore> {
        let score = |key: &str| match json.get(key) {
            Some(Json::U64(v)) => Some(Some(*v)),
            Some(Json::Null) => Some(None),
            _ => None,
        };
        let counter = |key: &str| match json.get(key) {
            Some(Json::U64(v)) => Some(*v),
            _ => None,
        };
        Some(QualityScore {
            latency: score("latency")?,
            loss: score("loss")?,
            fairness: score("fairness")?,
            degradation: score("degradation")?,
            overall: score("overall")?,
            contended_frames: counter("contended_frames")?,
            peak_queue: counter("peak_queue")?,
        })
    }
}

// ------------------------------------------------------------ scorecards

/// One scorecard cell: the number, or `-` for a missing score.
fn cell(v: Option<u64>) -> String {
    match v {
        Some(n) => n.to_string(),
        None => "-".to_owned(),
    }
}

/// Render per-scenario scorecards plus the sweep footer from a sweep
/// JSON document (what `ab_scenario analyze` prints). Deterministic:
/// plain ASCII, fixed column layout, byte-identical for byte-identical
/// input.
pub fn sweep_scorecards(sweep: &Json) -> Result<String, String> {
    let Some(Json::Arr(runs)) = sweep.get("runs") else {
        return Err("not a sweep document: no `runs` array".to_owned());
    };
    let mut out = String::new();
    out.push_str(&format!(
        "{:<34} {:>4} {:>4} {:>4} {:>4} {:>4} {:>4} {:>4} {:>4} {:>4}\n",
        "SCENARIO", "PASS", "INV%", "LAT", "LOSS", "FAIR", "DEGR", "QUAL", "PKQ", "SEC"
    ));
    let mut passed = 0u64;
    let mut overalls = Vec::new();
    for (i, run) in runs.iter().enumerate() {
        let name = match run.get("scenario").and_then(|s| s.get("name")) {
            Some(Json::Str(n)) => n.clone(),
            _ => return Err(format!("run {i}: missing scenario.name")),
        };
        let pass = match run.get("summary").and_then(|s| s.get("pass")) {
            Some(Json::Bool(b)) => *b,
            _ => return Err(format!("run {i}: missing summary.pass")),
        };
        let inv = match run.get("summary").and_then(|s| s.get("score_percent")) {
            Some(Json::U64(v)) => Some(*v),
            Some(Json::Null) => None,
            _ => return Err(format!("run {i}: missing summary.score_percent")),
        };
        let q = run
            .get("quality")
            .and_then(QualityScore::from_json)
            .ok_or_else(|| format!("run {i}: missing or malformed quality section"))?;
        // SEC: how hard the defense plane worked — evictions plus storm
        // suppressions plus BPDU-guard trips from the run's `security`
        // section; `-` on the non-adversarial runs that carry none.
        let sec = run.get("security").map(|s| {
            ["learn_evictions", "storm_suppressions", "bpdu_guard_trips"]
                .iter()
                .map(|key| match s.get(key) {
                    Some(Json::U64(v)) => *v,
                    _ => 0,
                })
                .sum::<u64>()
        });
        passed += u64::from(pass);
        if let Some(o) = q.overall {
            overalls.push(o);
        }
        out.push_str(&format!(
            "{:<34} {:>4} {:>4} {:>4} {:>4} {:>4} {:>4} {:>4} {:>4} {:>4}\n",
            name,
            if pass { "yes" } else { "NO" },
            cell(inv),
            cell(q.latency),
            cell(q.loss),
            cell(q.fairness),
            cell(q.degradation),
            cell(q.overall),
            // The deepest transmit queue any segment reached — the
            // congestion evidence behind a weak latency/degradation
            // score, surfaced next to it.
            q.peak_queue,
            cell(sec),
        ));
    }
    let mean_q = mean(&overalls);
    let min_q = overalls.iter().copied().min();
    out.push_str(&format!(
        "sweep: {} scenarios, {} passed | quality mean {} min {}\n",
        runs.len(),
        passed,
        cell(mean_q),
        cell(min_q),
    ));
    Ok(out)
}

/// The sweep's one-number quality verdict: the floor mean of every
/// scored scenario's overall score (what `--assert-score` gates on).
pub fn sweep_overall(sweep: &Json) -> Result<Option<u64>, String> {
    let Some(Json::Arr(runs)) = sweep.get("runs") else {
        return Err("not a sweep document: no `runs` array".to_owned());
    };
    let overalls: Vec<u64> = runs
        .iter()
        .filter_map(|r| r.get("quality"))
        .filter_map(QualityScore::from_json)
        .filter_map(|q| q.overall)
        .collect();
    Ok(mean(&overalls))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::AppMetrics;
    use crate::sketch::Sketch;

    fn ping(phase: Phase, received: u64, sent: u64, rtts: &[u64]) -> AppReport {
        AppReport {
            label: "ping",
            phase,
            from_seg: 0,
            to_seg: 1,
            ok: received == sent,
            detail: vec![("sent", sent), ("received", received)],
            metrics: AppMetrics {
                kind: "rtt",
                valid: received > 0,
                delivery_pm: (sent > 0).then(|| received * 1000 / sent),
                sketch: Some(Sketch::from_samples(rtts.iter().copied())),
            },
        }
    }

    fn blast(delivery_pm: u64) -> AppReport {
        AppReport {
            label: "blast",
            phase: Phase::Main,
            from_seg: 0,
            to_seg: 1,
            ok: delivery_pm == 1000,
            detail: vec![],
            metrics: AppMetrics::delivery(true, Some(delivery_pm)),
        }
    }

    #[test]
    fn latency_anchors_hold() {
        assert_eq!(latency_points(LATENCY_GOOD_NS), 100);
        assert_eq!(latency_points(LATENCY_GOOD_NS / 2), 100, "clamped below");
        assert_eq!(latency_points(LATENCY_BAD_NS), 0);
        assert_eq!(latency_points(LATENCY_BAD_NS * 2), 0, "clamped above");
        // The geometric midpoint (500 us · 10) lands near the middle.
        let mid = latency_points(5_000_000);
        assert!((40..=60).contains(&mid), "midpoint score was {mid}");
    }

    #[test]
    fn zero_received_ping_scores_zero_latency_not_perfect() {
        // The original bug: received == 0 rendered avg_rtt_ns: 0 and
        // would have scored as the fastest possible flow.
        let apps = [ping(Phase::Main, 0, 8, &[])];
        let q = score_apps(&apps);
        assert_eq!(q.latency, Some(0));
        assert_eq!(q.loss, Some(0));
    }

    #[test]
    fn good_pings_score_well() {
        let apps = [ping(Phase::Main, 8, 8, &[200_000, 210_000, 250_000])];
        let q = score_apps(&apps);
        assert_eq!(q.latency, Some(100));
        assert_eq!(q.loss, Some(100));
        assert_eq!(q.fairness, None, "one flow is not a fairness sample");
        assert_eq!(q.degradation, None, "no baseline/loaded pair");
        assert_eq!(q.overall, Some(100));
    }

    #[test]
    fn fairness_rewards_equal_delivery() {
        let equal = score_apps(&[blast(800), blast(800), blast(800)]);
        assert_eq!(equal.fairness, Some(100));
        let skewed = score_apps(&[blast(1000), blast(100), blast(100)]);
        assert!(
            skewed.fairness.unwrap() < 60,
            "skewed delivery must lose fairness points, got {:?}",
            skewed.fairness
        );
        let all_dead = score_apps(&[blast(0), blast(0)]);
        assert_eq!(all_dead.fairness, Some(100), "equal misery is equal");
        assert_eq!(all_dead.loss, Some(0));
    }

    #[test]
    fn degradation_compares_baseline_to_loaded() {
        // Loaded probe twice as slow with full delivery: 50 points.
        let apps = [
            ping(Phase::Baseline, 8, 8, &[1_000_000]),
            ping(Phase::Loaded, 8, 8, &[2_000_000]),
        ];
        let q = score_apps(&apps);
        assert_eq!(q.degradation, Some(50));

        // Loaded probe as fast as the baseline but half the replies.
        let apps = [
            ping(Phase::Baseline, 8, 8, &[1_000_000]),
            ping(Phase::Loaded, 4, 8, &[1_000_000]),
        ];
        assert_eq!(score_apps(&apps).degradation, Some(50));

        // Loaded probe that measured nothing: the network collapsed.
        let apps = [
            ping(Phase::Baseline, 8, 8, &[1_000_000]),
            ping(Phase::Loaded, 0, 8, &[]),
        ];
        assert_eq!(score_apps(&apps).degradation, Some(0));

        // Invalid baseline anchors nothing: the pair is skipped.
        let apps = [
            ping(Phase::Baseline, 0, 8, &[]),
            ping(Phase::Loaded, 8, 8, &[1_000_000]),
        ];
        assert_eq!(score_apps(&apps).degradation, None);
    }

    #[test]
    fn no_flows_means_no_scores() {
        let q = score_apps(&[]);
        assert_eq!(q.latency, None);
        assert_eq!(q.loss, None);
        assert_eq!(q.fairness, None);
        assert_eq!(q.degradation, None);
        assert_eq!(q.overall, None);
    }

    #[test]
    fn quality_json_round_trips() {
        let q = QualityScore {
            latency: Some(87),
            loss: Some(100),
            fairness: None,
            degradation: Some(62),
            overall: Some(83),
            contended_frames: 412,
            peak_queue: 7,
        };
        assert_eq!(QualityScore::from_json(&q.to_json()), Some(q));
    }

    #[test]
    fn scorecards_render_from_sweep_json() {
        let q = QualityScore {
            latency: Some(90),
            loss: Some(100),
            fairness: Some(100),
            degradation: None,
            overall: Some(96),
            contended_frames: 3,
            peak_queue: 1,
        };
        let run = Json::obj(vec![
            (
                "scenario",
                Json::obj(vec![("name", Json::str("line2-pings-s0"))]),
            ),
            (
                "summary",
                Json::obj(vec![
                    ("pass", Json::Bool(true)),
                    ("score_percent", Json::U64(100)),
                ]),
            ),
            ("quality", q.to_json()),
        ]);
        // A second, adversarial-style run carrying a security section:
        // its SEC cell is the evictions+suppressions+trips sum, while
        // the plain run above renders `-`.
        let mut secured = run.clone();
        let Json::Obj(members) = &mut secured else {
            unreachable!()
        };
        members[0].1 = Json::obj(vec![("name", Json::str("line2-adv-s0"))]);
        members.push((
            "security".to_owned(),
            Json::obj(vec![
                ("defended", Json::Bool(true)),
                ("learn_evictions", Json::U64(12)),
                ("storm_suppressions", Json::U64(3)),
                ("bpdu_guard_trips", Json::U64(1)),
            ]),
        ));
        let sweep = Json::obj(vec![("runs", Json::Arr(vec![run, secured]))]);
        let card = sweep_scorecards(&sweep).expect("well-formed sweep");
        assert!(card.contains("line2-pings-s0"));
        assert!(card.contains("yes"));
        assert!(card.contains("sweep: 2 scenarios, 2 passed"));
        assert_eq!(sweep_overall(&sweep), Ok(Some(96)));
        let lines: Vec<&str> = card.lines().collect();
        assert!(lines[0].ends_with("SEC"), "header gains SEC: {}", lines[0]);
        assert!(
            lines[1].ends_with(" -"),
            "no security section renders `-`: {}",
            lines[1]
        );
        assert!(
            lines[2].ends_with(" 16"),
            "SEC sums the defense counters: {}",
            lines[2]
        );

        // Malformed documents are errors, not panics.
        assert!(sweep_scorecards(&Json::obj(vec![])).is_err());
    }
}
