//! A fixed-bucket log2 histogram sketch for per-flow metric samples.
//!
//! Scenario reports must replay byte-identically from their seeds, so
//! the sketch is **integer-only**: values land in one of 64 buckets
//! keyed by their bit length (bucket `i` holds `v` with
//! `floor(log2(v)) == i`; zero shares bucket 0), and every derived
//! statistic — average, percentiles, the fixed-point log2 used by the
//! quality scorer — is computed with integer arithmetic. No float ever
//! touches the byte-equality path.
//!
//! Raw samples are *not* retained: a sketch is 64 counters plus
//! count/sum/min/max, so a metro-scale sweep's report stays small no
//! matter how many samples the flows produced, and two sketches merge
//! by adding counters (what sweep aggregation does).

use crate::json::Json;

/// Bucket count: `u64` values have at most 64 distinct bit lengths.
pub const BUCKETS: usize = 64;

/// A log2 histogram of `u64` samples (nanoseconds, byte counts, …).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Sketch {
    buckets: [u64; BUCKETS],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Sketch {
    fn default() -> Self {
        Sketch::new()
    }
}

impl Sketch {
    /// An empty sketch.
    pub fn new() -> Sketch {
        Sketch {
            buckets: [0; BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// A sketch over an iterator of samples.
    pub fn from_samples(samples: impl IntoIterator<Item = u64>) -> Sketch {
        let mut s = Sketch::new();
        for v in samples {
            s.record(v);
        }
        s
    }

    /// The bucket a value lands in: its bit length minus one (zero goes
    /// to bucket 0).
    pub fn bucket_of(v: u64) -> usize {
        if v == 0 {
            0
        } else {
            63 - v.leading_zeros() as usize
        }
    }

    /// Record one sample.
    pub fn record(&mut self, v: u64) {
        self.buckets[Self::bucket_of(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Smallest sample (None when empty).
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest sample (None when empty).
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Integer mean of the samples (None when empty).
    pub fn avg(&self) -> Option<u64> {
        (self.count > 0).then(|| self.sum / self.count)
    }

    /// The `p`-th percentile (0..=100), derived from the buckets: the
    /// representative value of the bucket holding the `ceil(count*p/100)`-th
    /// smallest sample. The representative is the bucket's geometric
    /// midpoint `1.5 * 2^i`, clamped into the observed `[min, max]` so a
    /// single-bucket sketch reports within its real range. None when
    /// empty.
    pub fn percentile(&self, p: u64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        if p >= 100 {
            return Some(self.max);
        }
        let rank = (self.count * p).div_ceil(100).max(1);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                let rep = if i == 0 {
                    1
                } else {
                    (1u64 << i) + (1u64 << i) / 2
                };
                return Some(rep.clamp(self.min, self.max));
            }
        }
        Some(self.max)
    }

    /// Fold another sketch into this one (sweep-level aggregation).
    pub fn merge(&mut self, other: &Sketch) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Render as JSON: summary integers plus the non-empty buckets as
    /// `[bucket_index, count]` pairs in index order (sparse — most of
    /// the 64 buckets are empty for any real flow).
    pub fn to_json(&self) -> Json {
        let buckets = Json::Arr(
            self.buckets
                .iter()
                .enumerate()
                .filter(|(_, &n)| n > 0)
                .map(|(i, &n)| Json::Arr(vec![Json::U64(i as u64), Json::U64(n)]))
                .collect(),
        );
        Json::obj(vec![
            ("count", Json::U64(self.count)),
            ("sum", Json::U64(self.sum)),
            ("min", self.min().map(Json::U64).unwrap_or(Json::Null)),
            ("max", self.max().map(Json::U64).unwrap_or(Json::Null)),
            ("buckets", buckets),
        ])
    }

    /// Rebuild a sketch from its [`Sketch::to_json`] rendering (what the
    /// offline analyzer does). Returns None on structural mismatch.
    pub fn from_json(json: &Json) -> Option<Sketch> {
        let mut s = Sketch::new();
        s.count = match json.get("count")? {
            Json::U64(n) => *n,
            _ => return None,
        };
        s.sum = match json.get("sum")? {
            Json::U64(n) => *n,
            _ => return None,
        };
        s.min = match json.get("min")? {
            Json::U64(n) => *n,
            Json::Null => u64::MAX,
            _ => return None,
        };
        s.max = match json.get("max")? {
            Json::U64(n) => *n,
            Json::Null => 0,
            _ => return None,
        };
        let Json::Arr(pairs) = json.get("buckets")? else {
            return None;
        };
        for pair in pairs {
            let Json::Arr(kv) = pair else { return None };
            let [Json::U64(i), Json::U64(n)] = kv.as_slice() else {
                return None;
            };
            *s.buckets.get_mut(*i as usize)? = *n;
        }
        Some(s)
    }
}

/// Fixed-point base-2 logarithm: `log2(v)` in 1/256ths, with the
/// fractional part linearly approximated from the 8 bits below the top
/// bit. Monotonic, integer-only, and plenty for mapping latencies onto
/// a 0–100 score. `v = 0` maps to 0.
pub fn log2_fp(v: u64) -> u64 {
    if v == 0 {
        return 0;
    }
    let k = 63 - v.leading_zeros() as u64;
    let frac = if k >= 8 {
        (v >> (k - 8)) & 0xFF
    } else {
        (v << (8 - k)) & 0xFF
    };
    k * 256 + frac
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_summarizes() {
        let mut s = Sketch::new();
        for v in [100, 200, 400, 800, 1600] {
            s.record(v);
        }
        assert_eq!(s.count(), 5);
        assert_eq!(s.min(), Some(100));
        assert_eq!(s.max(), Some(1600));
        assert_eq!(s.avg(), Some(620));
        // p50 lands in 400's bucket (2^8..2^9): representative 384.
        assert_eq!(s.percentile(50), Some(384));
        // p100 is clamped to the observed max.
        assert_eq!(s.percentile(100), Some(1600));
    }

    #[test]
    fn empty_sketch_has_no_statistics() {
        let s = Sketch::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.avg(), None);
        assert_eq!(s.percentile(50), None);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
    }

    #[test]
    fn zero_and_extreme_values_bucket_safely() {
        let mut s = Sketch::new();
        s.record(0);
        s.record(1);
        s.record(u64::MAX);
        assert_eq!(Sketch::bucket_of(0), 0);
        assert_eq!(Sketch::bucket_of(1), 0);
        assert_eq!(Sketch::bucket_of(u64::MAX), 63);
        assert_eq!(s.count(), 3);
        assert_eq!(s.max(), Some(u64::MAX));
        // The sum saturates instead of wrapping.
        assert_eq!(s.avg(), Some(u64::MAX / 3));
    }

    #[test]
    fn merge_is_counter_addition() {
        let a = Sketch::from_samples([10, 20, 30]);
        let b = Sketch::from_samples([40, 50]);
        let mut merged = a.clone();
        merged.merge(&b);
        let direct = Sketch::from_samples([10, 20, 30, 40, 50]);
        assert_eq!(merged, direct);
    }

    #[test]
    fn json_round_trips() {
        let s = Sketch::from_samples([0, 3, 900, 1_000_000, 123_456_789]);
        let rebuilt = Sketch::from_json(&s.to_json()).expect("well-formed");
        assert_eq!(rebuilt, s);
        let empty = Sketch::new();
        assert_eq!(Sketch::from_json(&empty.to_json()), Some(empty));
    }

    #[test]
    fn log2_fixed_point_is_monotonic_and_anchored() {
        assert_eq!(log2_fp(1), 0);
        assert_eq!(log2_fp(2), 256);
        assert_eq!(log2_fp(1 << 20), 20 * 256);
        let mut prev = 0;
        for v in [1u64, 2, 3, 5, 100, 1000, 1001, 1 << 30, u64::MAX] {
            let l = log2_fp(v);
            assert!(l >= prev, "log2_fp must be monotonic at {v}");
            prev = l;
        }
    }
}
