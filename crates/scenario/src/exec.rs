//! The deterministic multi-core execution plane: run independent jobs
//! across worker threads and merge their results in stable job order.
//!
//! # Why job-level parallelism
//!
//! A `World` is a pure function of `(shape, seed)` and is deliberately
//! `!Send` (`Rc`-backed frame buffers, single-threaded event loop).
//! Sharding one world across cores would put the event queue's total
//! order — the thing determinism hangs on — behind synchronization.
//! Sweeps and bench batteries, though, are *batches of independent
//! worlds*: the natural unit of parallelism is the job, not the frame.
//! Each worker constructs, runs and scores a whole world without its
//! `World` ever crossing a thread boundary; only the plain-data job
//! spec goes in and the plain-data result comes out (the
//! CloudflareST-style worker-fleet shape: fan measurement jobs out,
//! merge machine-readable results).
//!
//! # The determinism argument
//!
//! * job specs are `Send` plain data, results are `Send` plain data;
//! * every job's result depends only on its spec (worlds share nothing —
//!   no global RNG, no cross-world state);
//! * results land in a slot keyed by the job's index and are merged in
//!   index order after all workers join.
//!
//! Scheduling therefore cannot reorder, drop or duplicate anything: a
//! report assembled from an N-worker run is **byte-identical** to the
//! 1-worker run (`tests/scenario_exec.rs` asserts this across the
//! committed sweep, down to FNV trace digests).
//!
//! Workers may carry worker-local scratch state across jobs
//! ([`run_jobs_local`]) — the sweep runner hands each worker one
//! reusable [`netsim::World`] so consecutive scenarios amortize arena
//! and pool allocations via `World::reset`.

use std::collections::VecDeque;
use std::sync::{Mutex, PoisonError};
use std::time::Instant;

/// Where one job's wall-clock time went, as seen by the pool.
///
/// Wall-clock values never enter byte-compared artifacts (reports, trace
/// JSON): the profile renders to stderr only, so timing jitter cannot
/// break the byte-identity guarantees of the result merge.
#[derive(Copy, Clone, Debug)]
pub struct JobProfile {
    /// Job index in spec order.
    pub id: usize,
    /// Worker that executed the job (0-based; 0 on the sequential path).
    pub worker: usize,
    /// Time between pool start and this job's dequeue.
    pub queue_wait_ns: u64,
    /// Time inside the job closure.
    pub run_ns: u64,
}

/// One worker's aggregate over a pool run.
#[derive(Copy, Clone, Debug, Default)]
pub struct WorkerProfile {
    /// Jobs executed.
    pub jobs: u64,
    /// Total time inside job closures.
    pub busy_ns: u64,
}

/// Pool self-profile: per-job timings **merged in job-id order** (so the
/// profile's shape is identical across `--jobs 1/2/4`; only the
/// wall-clock values differ) plus per-worker aggregates.
#[derive(Clone, Debug, Default)]
pub struct PoolProfile {
    /// Per-job timings, in job-id order.
    pub jobs: Vec<JobProfile>,
    /// Per-worker aggregates, indexed by worker id.
    pub workers: Vec<WorkerProfile>,
    /// Pool wall time, start to join.
    pub wall_ns: u64,
}

impl PoolProfile {
    /// Render a fixed-width utilization table (for stderr).
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let wall_ms = self.wall_ns as f64 / 1e6;
        let busy_total: u64 = self.workers.iter().map(|w| w.busy_ns).sum();
        let _ = writeln!(
            out,
            "pool: {} jobs on {} workers, wall {:.1} ms, busy {:.1} ms ({:.0}% utilization)",
            self.jobs.len(),
            self.workers.len(),
            wall_ms,
            busy_total as f64 / 1e6,
            if self.wall_ns > 0 && !self.workers.is_empty() {
                100.0 * busy_total as f64 / (self.wall_ns as f64 * self.workers.len() as f64)
            } else {
                0.0
            },
        );
        let _ = writeln!(
            out,
            "  {:>6}  {:>6}  {:>10}  {:>6}",
            "worker", "jobs", "busy ms", "util"
        );
        for (i, w) in self.workers.iter().enumerate() {
            let util = if self.wall_ns > 0 {
                100.0 * w.busy_ns as f64 / self.wall_ns as f64
            } else {
                0.0
            };
            let _ = writeln!(
                out,
                "  {i:>6}  {:>6}  {:>10.2}  {util:>5.0}%",
                w.jobs,
                w.busy_ns as f64 / 1e6,
            );
        }
        let mut slowest: Vec<&JobProfile> = self.jobs.iter().collect();
        slowest.sort_by(|a, b| b.run_ns.cmp(&a.run_ns).then(a.id.cmp(&b.id)));
        for j in slowest.iter().take(5) {
            let _ = writeln!(
                out,
                "  job {:>4}  worker {}  wait {:>8.2} ms  run {:>8.2} ms",
                j.id,
                j.worker,
                j.queue_wait_ns as f64 / 1e6,
                j.run_ns as f64 / 1e6,
            );
        }
        out
    }
}

/// The default worker count: what the OS reports as available
/// parallelism (1 when unknown).
pub fn default_jobs() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Parse a `--jobs` style argument: a positive integer, or `0`/`auto`
/// meaning [`default_jobs`].
pub fn parse_jobs(arg: &str) -> Option<usize> {
    if arg == "auto" {
        return Some(default_jobs());
    }
    match arg.parse::<usize>() {
        Ok(0) => Some(default_jobs()),
        Ok(n) => Some(n),
        Err(_) => None,
    }
}

/// Run every job in `specs` across up to `jobs` worker threads and
/// return the results **in spec order**, regardless of which worker ran
/// what when. `jobs <= 1` runs everything on the calling thread, in
/// order, with no thread machinery at all.
pub fn run_jobs<S, R>(specs: Vec<S>, jobs: usize, run: impl Fn(S) -> R + Sync) -> Vec<R>
where
    S: Send,
    R: Send,
{
    run_jobs_local(specs, jobs, || (), move |(), spec| run(spec))
}

/// [`run_jobs`] with worker-local state: each worker calls
/// `worker_state` once and threads the value through every job it
/// executes. The state never crosses threads, so it may be `!Send`
/// (this is how sweep workers each own a reusable `World`). The
/// sequential `jobs <= 1` path uses one state for the whole batch —
/// exactly what a one-worker pool would do.
pub fn run_jobs_local<S, R, W>(
    specs: Vec<S>,
    jobs: usize,
    worker_state: impl Fn() -> W + Sync,
    run: impl Fn(&mut W, S) -> R + Sync,
) -> Vec<R>
where
    S: Send,
    R: Send,
{
    run_jobs_local_profiled(specs, jobs, worker_state, run).0
}

/// [`run_jobs_local`] plus a [`PoolProfile`]: per-job queue-wait and run
/// times and per-worker utilization, merged in job-id order after the
/// join. Profiling is passive (two `Instant::now` reads per job) and
/// cannot affect results or their order.
pub fn run_jobs_local_profiled<S, R, W>(
    specs: Vec<S>,
    jobs: usize,
    worker_state: impl Fn() -> W + Sync,
    run: impl Fn(&mut W, S) -> R + Sync,
) -> (Vec<R>, PoolProfile)
where
    S: Send,
    R: Send,
{
    let n = specs.len();
    let pool_start = Instant::now();
    if jobs <= 1 || n <= 1 {
        let mut state = worker_state();
        let mut out = Vec::with_capacity(n);
        let mut profile = PoolProfile {
            workers: vec![WorkerProfile::default()],
            ..Default::default()
        };
        for (id, spec) in specs.into_iter().enumerate() {
            let dequeued = pool_start.elapsed();
            let t0 = Instant::now();
            out.push(run(&mut state, spec));
            let run_ns = t0.elapsed().as_nanos() as u64;
            profile.jobs.push(JobProfile {
                id,
                worker: 0,
                queue_wait_ns: dequeued.as_nanos() as u64,
                run_ns,
            });
            profile.workers[0].jobs += 1;
            profile.workers[0].busy_ns += run_ns;
        }
        profile.wall_ns = pool_start.elapsed().as_nanos() as u64;
        return (out, profile);
    }

    // Work-stealing-lite: one shared deque of `(job id, spec)`; idle
    // workers pop from the front. Results go into per-job slots so the
    // merge below is a plain in-order unwrap.
    //
    // A panicking job poisons whichever mutex it held; sibling workers
    // recover the guard with `PoisonError::into_inner` (the queue and
    // slots hold plain data that is never left half-updated across an
    // unwind) and keep draining. The handles are joined explicitly so
    // the *first* panic's real payload is resumed on the caller —
    // letting `thread::scope` do the join would replace it with an
    // opaque "a scoped thread panicked".
    let queue: Mutex<VecDeque<(usize, S)>> = Mutex::new(specs.into_iter().enumerate().collect());
    let results: Vec<Mutex<Option<(R, JobProfile)>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let workers = jobs.min(n);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|worker| {
                // `move` carries only the Copy bits (worker id, the pool
                // start instant); the shared structures go in by
                // reference.
                let (queue, results) = (&queue, &results);
                let (worker_state, run) = (&worker_state, &run);
                scope.spawn(move || {
                    let mut state = worker_state();
                    loop {
                        let job = queue
                            .lock()
                            .unwrap_or_else(PoisonError::into_inner)
                            .pop_front();
                        let Some((id, spec)) = job else { break };
                        let queue_wait_ns = pool_start.elapsed().as_nanos() as u64;
                        let t0 = Instant::now();
                        let result = run(&mut state, spec);
                        let prof = JobProfile {
                            id,
                            worker,
                            queue_wait_ns,
                            run_ns: t0.elapsed().as_nanos() as u64,
                        };
                        *results[id].lock().unwrap_or_else(PoisonError::into_inner) =
                            Some((result, prof));
                    }
                })
            })
            .collect();
        let mut first_panic = None;
        for handle in handles {
            if let Err(payload) = handle.join() {
                first_panic.get_or_insert(payload);
            }
        }
        if let Some(payload) = first_panic {
            std::panic::resume_unwind(payload);
        }
    });
    let mut profile = PoolProfile {
        workers: vec![WorkerProfile::default(); workers],
        ..Default::default()
    };
    let out = results
        .into_iter()
        .map(|slot| {
            let (result, prof) = slot
                .into_inner()
                .unwrap_or_else(PoisonError::into_inner)
                .expect("pool joined with an unfinished job");
            profile.jobs.push(prof);
            profile.workers[prof.worker].jobs += 1;
            profile.workers[prof.worker].busy_ns += prof.run_ns;
            result
        })
        .collect();
    profile.wall_ns = pool_start.elapsed().as_nanos() as u64;
    (out, profile)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn results_come_back_in_spec_order() {
        for jobs in [1, 2, 4, 7] {
            let specs: Vec<u64> = (0..25).collect();
            let out = run_jobs(specs.clone(), jobs, |x| x * 3 + 1);
            let expect: Vec<u64> = specs.iter().map(|x| x * 3 + 1).collect();
            assert_eq!(out, expect, "jobs={jobs}");
        }
    }

    #[test]
    fn every_job_runs_exactly_once() {
        let ran = AtomicUsize::new(0);
        let out = run_jobs((0..100usize).collect(), 4, |x| {
            ran.fetch_add(1, Ordering::Relaxed);
            x
        });
        assert_eq!(ran.load(Ordering::Relaxed), 100);
        assert_eq!(out, (0..100usize).collect::<Vec<_>>());
    }

    #[test]
    fn worker_state_is_reused_not_shared() {
        // Each worker's state counts the jobs it ran; the total across
        // workers must equal the job count (no job lost or duplicated),
        // and with one worker a single state sees every job.
        let total = AtomicUsize::new(0);
        struct Local<'a> {
            mine: usize,
            total: &'a AtomicUsize,
        }
        impl Drop for Local<'_> {
            fn drop(&mut self) {
                self.total.fetch_add(self.mine, Ordering::Relaxed);
            }
        }
        let out = run_jobs_local(
            (0..40usize).collect(),
            3,
            || Local {
                mine: 0,
                total: &total,
            },
            |state, x| {
                state.mine += 1;
                x
            },
        );
        assert_eq!(out.len(), 40);
        assert_eq!(total.load(Ordering::Relaxed), 40);
    }

    #[test]
    fn empty_and_oversubscribed_batches_work() {
        assert_eq!(run_jobs(Vec::<u8>::new(), 4, |x| x), Vec::<u8>::new());
        assert_eq!(run_jobs(vec![9u8], 16, |x| x + 1), vec![10]);
    }

    #[test]
    fn panicking_job_propagates_its_own_payload() {
        // Before the poison fix, the panicking job poisoned the shared
        // queue mutex and sibling workers died on "job queue poisoned"
        // — a cascade that masked the original panic. The pool must
        // surface the real payload.
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_jobs((0..20usize).collect(), 4, |x| {
                if x == 7 {
                    panic!("job 7 exploded");
                }
                x
            })
        }));
        let payload = caught.expect_err("the pool must propagate the panic");
        let msg = payload
            .downcast_ref::<&str>()
            .copied()
            .map(str::to_owned)
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_default();
        assert!(
            msg.contains("job 7 exploded"),
            "expected the original payload, got {msg:?}"
        );
    }

    #[test]
    fn surviving_workers_drain_the_queue_after_a_panic() {
        // The queue mutex is poisoned mid-drain; remaining jobs must
        // still run (recovered guards), observable via the counter.
        let ran = AtomicUsize::new(0);
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_jobs((0..50usize).collect(), 2, |x| {
                ran.fetch_add(1, Ordering::Relaxed);
                if x == 0 {
                    panic!("first job dies");
                }
                x
            })
        }));
        // 49 survivors + the panicking job itself reached the closure.
        assert_eq!(ran.load(Ordering::Relaxed), 50);
    }

    #[test]
    fn pool_profile_merges_in_job_order_for_any_worker_count() {
        for jobs in [1, 2, 4] {
            let (out, profile) =
                run_jobs_local_profiled((0..20usize).collect(), jobs, || (), |(), x| x * 2);
            assert_eq!(out, (0..20usize).map(|x| x * 2).collect::<Vec<_>>());
            let ids: Vec<usize> = profile.jobs.iter().map(|j| j.id).collect();
            assert_eq!(ids, (0..20).collect::<Vec<_>>(), "jobs={jobs}");
            assert_eq!(profile.workers.len(), jobs.max(1), "jobs={jobs}");
            let ran: u64 = profile.workers.iter().map(|w| w.jobs).sum();
            assert_eq!(ran, 20);
            for j in &profile.jobs {
                assert!(j.worker < profile.workers.len());
            }
            assert!(profile.render().starts_with("pool: 20 jobs"));
        }
    }

    #[test]
    fn parse_jobs_accepts_auto_and_rejects_junk() {
        assert_eq!(parse_jobs("3"), Some(3));
        assert_eq!(parse_jobs("auto"), Some(default_jobs()));
        assert_eq!(parse_jobs("0"), Some(default_jobs()));
        assert_eq!(parse_jobs("many"), None);
        assert!(default_jobs() >= 1);
    }
}
