//! The deterministic multi-core execution plane: run independent jobs
//! across worker threads and merge their results in stable job order.
//!
//! # Why job-level parallelism
//!
//! A `World` is a pure function of `(shape, seed)` and is deliberately
//! `!Send` (`Rc`-backed frame buffers, single-threaded event loop).
//! Sharding one world across cores would put the event queue's total
//! order — the thing determinism hangs on — behind synchronization.
//! Sweeps and bench batteries, though, are *batches of independent
//! worlds*: the natural unit of parallelism is the job, not the frame.
//! Each worker constructs, runs and scores a whole world without its
//! `World` ever crossing a thread boundary; only the plain-data job
//! spec goes in and the plain-data result comes out (the
//! CloudflareST-style worker-fleet shape: fan measurement jobs out,
//! merge machine-readable results).
//!
//! # The determinism argument
//!
//! * job specs are `Send` plain data, results are `Send` plain data;
//! * every job's result depends only on its spec (worlds share nothing —
//!   no global RNG, no cross-world state);
//! * results land in a slot keyed by the job's index and are merged in
//!   index order after all workers join.
//!
//! Scheduling therefore cannot reorder, drop or duplicate anything: a
//! report assembled from an N-worker run is **byte-identical** to the
//! 1-worker run (`tests/scenario_exec.rs` asserts this across the
//! committed sweep, down to FNV trace digests).
//!
//! Workers may carry worker-local scratch state across jobs
//! ([`run_jobs_local`]) — the sweep runner hands each worker one
//! reusable [`netsim::World`] so consecutive scenarios amortize arena
//! and pool allocations via `World::reset`.

use std::collections::VecDeque;
use std::sync::{Mutex, PoisonError};

/// The default worker count: what the OS reports as available
/// parallelism (1 when unknown).
pub fn default_jobs() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Parse a `--jobs` style argument: a positive integer, or `0`/`auto`
/// meaning [`default_jobs`].
pub fn parse_jobs(arg: &str) -> Option<usize> {
    if arg == "auto" {
        return Some(default_jobs());
    }
    match arg.parse::<usize>() {
        Ok(0) => Some(default_jobs()),
        Ok(n) => Some(n),
        Err(_) => None,
    }
}

/// Run every job in `specs` across up to `jobs` worker threads and
/// return the results **in spec order**, regardless of which worker ran
/// what when. `jobs <= 1` runs everything on the calling thread, in
/// order, with no thread machinery at all.
pub fn run_jobs<S, R>(specs: Vec<S>, jobs: usize, run: impl Fn(S) -> R + Sync) -> Vec<R>
where
    S: Send,
    R: Send,
{
    run_jobs_local(specs, jobs, || (), move |(), spec| run(spec))
}

/// [`run_jobs`] with worker-local state: each worker calls
/// `worker_state` once and threads the value through every job it
/// executes. The state never crosses threads, so it may be `!Send`
/// (this is how sweep workers each own a reusable `World`). The
/// sequential `jobs <= 1` path uses one state for the whole batch —
/// exactly what a one-worker pool would do.
pub fn run_jobs_local<S, R, W>(
    specs: Vec<S>,
    jobs: usize,
    worker_state: impl Fn() -> W + Sync,
    run: impl Fn(&mut W, S) -> R + Sync,
) -> Vec<R>
where
    S: Send,
    R: Send,
{
    let n = specs.len();
    if jobs <= 1 || n <= 1 {
        let mut state = worker_state();
        return specs.into_iter().map(|s| run(&mut state, s)).collect();
    }

    // Work-stealing-lite: one shared deque of `(job id, spec)`; idle
    // workers pop from the front. Results go into per-job slots so the
    // merge below is a plain in-order unwrap.
    //
    // A panicking job poisons whichever mutex it held; sibling workers
    // recover the guard with `PoisonError::into_inner` (the queue and
    // slots hold plain data that is never left half-updated across an
    // unwind) and keep draining. The handles are joined explicitly so
    // the *first* panic's real payload is resumed on the caller —
    // letting `thread::scope` do the join would replace it with an
    // opaque "a scoped thread panicked".
    let queue: Mutex<VecDeque<(usize, S)>> = Mutex::new(specs.into_iter().enumerate().collect());
    let results: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let workers = jobs.min(n);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut state = worker_state();
                    loop {
                        let job = queue
                            .lock()
                            .unwrap_or_else(PoisonError::into_inner)
                            .pop_front();
                        let Some((id, spec)) = job else { break };
                        let result = run(&mut state, spec);
                        *results[id].lock().unwrap_or_else(PoisonError::into_inner) = Some(result);
                    }
                })
            })
            .collect();
        let mut first_panic = None;
        for handle in handles {
            if let Err(payload) = handle.join() {
                first_panic.get_or_insert(payload);
            }
        }
        if let Some(payload) = first_panic {
            std::panic::resume_unwind(payload);
        }
    });
    results
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .unwrap_or_else(PoisonError::into_inner)
                .expect("pool joined with an unfinished job")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn results_come_back_in_spec_order() {
        for jobs in [1, 2, 4, 7] {
            let specs: Vec<u64> = (0..25).collect();
            let out = run_jobs(specs.clone(), jobs, |x| x * 3 + 1);
            let expect: Vec<u64> = specs.iter().map(|x| x * 3 + 1).collect();
            assert_eq!(out, expect, "jobs={jobs}");
        }
    }

    #[test]
    fn every_job_runs_exactly_once() {
        let ran = AtomicUsize::new(0);
        let out = run_jobs((0..100usize).collect(), 4, |x| {
            ran.fetch_add(1, Ordering::Relaxed);
            x
        });
        assert_eq!(ran.load(Ordering::Relaxed), 100);
        assert_eq!(out, (0..100usize).collect::<Vec<_>>());
    }

    #[test]
    fn worker_state_is_reused_not_shared() {
        // Each worker's state counts the jobs it ran; the total across
        // workers must equal the job count (no job lost or duplicated),
        // and with one worker a single state sees every job.
        let total = AtomicUsize::new(0);
        struct Local<'a> {
            mine: usize,
            total: &'a AtomicUsize,
        }
        impl Drop for Local<'_> {
            fn drop(&mut self) {
                self.total.fetch_add(self.mine, Ordering::Relaxed);
            }
        }
        let out = run_jobs_local(
            (0..40usize).collect(),
            3,
            || Local {
                mine: 0,
                total: &total,
            },
            |state, x| {
                state.mine += 1;
                x
            },
        );
        assert_eq!(out.len(), 40);
        assert_eq!(total.load(Ordering::Relaxed), 40);
    }

    #[test]
    fn empty_and_oversubscribed_batches_work() {
        assert_eq!(run_jobs(Vec::<u8>::new(), 4, |x| x), Vec::<u8>::new());
        assert_eq!(run_jobs(vec![9u8], 16, |x| x + 1), vec![10]);
    }

    #[test]
    fn panicking_job_propagates_its_own_payload() {
        // Before the poison fix, the panicking job poisoned the shared
        // queue mutex and sibling workers died on "job queue poisoned"
        // — a cascade that masked the original panic. The pool must
        // surface the real payload.
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_jobs((0..20usize).collect(), 4, |x| {
                if x == 7 {
                    panic!("job 7 exploded");
                }
                x
            })
        }));
        let payload = caught.expect_err("the pool must propagate the panic");
        let msg = payload
            .downcast_ref::<&str>()
            .copied()
            .map(str::to_owned)
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_default();
        assert!(
            msg.contains("job 7 exploded"),
            "expected the original payload, got {msg:?}"
        );
    }

    #[test]
    fn surviving_workers_drain_the_queue_after_a_panic() {
        // The queue mutex is poisoned mid-drain; remaining jobs must
        // still run (recovered guards), observable via the counter.
        let ran = AtomicUsize::new(0);
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_jobs((0..50usize).collect(), 2, |x| {
                ran.fetch_add(1, Ordering::Relaxed);
                if x == 0 {
                    panic!("first job dies");
                }
                x
            })
        }));
        // 49 survivors + the panicking job itself reached the closure.
        assert_eq!(ran.load(Ordering::Relaxed), 50);
    }

    #[test]
    fn parse_jobs_accepts_auto_and_rejects_junk() {
        assert_eq!(parse_jobs("3"), Some(3));
        assert_eq!(parse_jobs("auto"), Some(default_jobs()));
        assert_eq!(parse_jobs("0"), Some(default_jobs()));
        assert_eq!(parse_jobs("many"), None);
        assert!(default_jobs() >= 1);
    }
}
