//! Parametric topology generation.
//!
//! A topology is **data first**: [`generate`] turns `(shape, seed)` into a
//! pure [`Topology`] description (segment specs plus bridge wiring) with no
//! simulator objects in sight, so shapes can be property-tested — and two
//! calls with the same inputs are structurally identical. [`instantiate`]
//! then materializes a description into a [`World`].
//!
//! All shapes are connected by construction. Shapes whose wiring contains
//! physical loops ([`Topology::cyclic`]) must run a spanning tree to be
//! usable; [`Topology::default_boot`] picks the right switchlet set.

use active_bridge::scenario_impl as prims;
use active_bridge::BridgeConfig;
use netsim::{NodeId, SegId, SegmentConfig, SimDuration, World, Xoshiro};

/// The supported parametric shapes.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum TopologyShape {
    /// `bridges` bridges in a row over `bridges + 1` segments.
    Line {
        /// Bridge count (≥ 1).
        bridges: usize,
    },
    /// `bridges` bridges around `bridges` segments (contains a loop).
    Ring {
        /// Bridge count (≥ 2).
        bridges: usize,
    },
    /// A hub segment with `arms` leaf segments, one bridge per arm.
    Star {
        /// Leaf count (≥ 1).
        arms: usize,
    },
    /// A balanced tree of segments: every non-leaf segment has `fanout`
    /// children, each reached through its own bridge.
    Tree {
        /// Levels below the root (≥ 1).
        depth: usize,
        /// Children per segment (≥ 1).
        fanout: usize,
    },
    /// Every pair of `segments` segments joined by a bridge (loops for
    /// `segments ≥ 3`).
    FullMesh {
        /// Segment count (≥ 2).
        segments: usize,
    },
    /// A random spanning tree over `segments` segments plus `extra_links`
    /// additional random bridges (loops whenever `extra_links > 0`).
    Random {
        /// Segment count (≥ 2).
        segments: usize,
        /// Redundant links beyond the spanning tree.
        extra_links: usize,
    },
    /// The metro tier: a backbone of `spines` gigabit spine segments
    /// joined in a line by spine bridges, with `districts` districts
    /// hanging off it round-robin. Each district is a seeded-random tree
    /// of `leaves` access segments rooted at its uplink bridge — the
    /// spine/leaf shape that carries the ≥1000-host workloads of the
    /// `metro` battery. Acyclic by construction (redundant metro cores
    /// are what [`TopologyShape::Random`] with `extra_links` models).
    Metro {
        /// Backbone segment count (≥ 1).
        spines: usize,
        /// District count (≥ 1).
        districts: usize,
        /// Access segments per district (≥ 1).
        leaves: usize,
    },
}

impl TopologyShape {
    /// Short label for names and reports.
    pub fn label(&self) -> &'static str {
        match self {
            TopologyShape::Line { .. } => "line",
            TopologyShape::Ring { .. } => "ring",
            TopologyShape::Star { .. } => "star",
            TopologyShape::Tree { .. } => "tree",
            TopologyShape::FullMesh { .. } => "full_mesh",
            TopologyShape::Random { .. } => "random",
            TopologyShape::Metro { .. } => "metro",
        }
    }

    /// The small metro preset (2 spines × 4 districts × 2 leaves —
    /// 10 segments, 9 bridges): big enough to have a real backbone,
    /// small enough for test sweeps.
    pub fn metro_small() -> TopologyShape {
        TopologyShape::Metro {
            spines: 2,
            districts: 4,
            leaves: 2,
        }
    }

    /// The large metro preset (4 spines × 16 districts × 4 leaves — 68
    /// segments, 67 bridges, 64 access segments): with the `metro`
    /// battery's 16 hosts per access segment this is the ≥1024-host
    /// scale tier the bench gates on.
    pub fn metro_large() -> TopologyShape {
        TopologyShape::Metro {
            spines: 4,
            districts: 16,
            leaves: 4,
        }
    }
}

/// What role a segment plays in its topology (drives media parameters
/// and workload placement).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Default)]
pub enum SegTier {
    /// An edge LAN: hosts live here. The default everywhere except the
    /// metro backbone.
    #[default]
    Access,
    /// A metro backbone segment: gigabit, host-free — only bridges
    /// attach.
    Backbone,
}

/// One segment to be created, with its per-edge medium parameters.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SegmentSpec {
    /// Segment name (`lan0..`, `spine0..` on the metro backbone).
    pub name: String,
    /// Link bandwidth in bits/second.
    pub bandwidth_bps: u64,
    /// One-way propagation delay.
    pub propagation: SimDuration,
    /// The segment's role.
    pub tier: SegTier,
}

/// One bridge to be created and the segments (by index) it attaches to.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BridgeSpec {
    /// Bridge index (drives its MAC/IP via the address helpers).
    pub index: u32,
    /// Indices into [`Topology::segments`], in port order.
    pub segments: Vec<usize>,
}

/// A generated topology: pure data, ready to instantiate.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Topology {
    /// The shape it was generated from.
    pub shape: TopologyShape,
    /// The generation seed.
    pub seed: u64,
    /// Segments to create, in id order.
    pub segments: Vec<SegmentSpec>,
    /// Bridges to create, in id order.
    pub bridges: Vec<BridgeSpec>,
}

/// Hard cap on generated sizes — scenario sweeps want many small worlds,
/// not one enormous one.
pub const MAX_SEGMENTS: usize = 96;

/// Generate the topology for `(shape, seed)`.
///
/// Pure and deterministic: the same inputs produce a structurally
/// identical [`Topology`]. The seed only shapes parametric choices the
/// shape leaves open (per-segment bandwidth mix, random wiring).
pub fn generate(shape: TopologyShape, seed: u64) -> Topology {
    // A private stream per concern: wiring draws must not shift when the
    // bandwidth mix changes and vice versa.
    let mut wiring_rng = Xoshiro::seed_from_u64(seed ^ 0x7090_5CE7_A810_0001);
    let mut media_rng = Xoshiro::seed_from_u64(seed ^ 0x7090_5CE7_A810_0002);

    let mut bridges: Vec<BridgeSpec> = Vec::new();
    let mut n_segments;
    // The first `n_backbone` segments get the Backbone tier (only the
    // metro shape has any).
    let mut n_backbone = 0usize;
    let link = |bridges: &mut Vec<BridgeSpec>, a: usize, b: usize| {
        let index = bridges.len() as u32;
        bridges.push(BridgeSpec {
            index,
            segments: vec![a, b],
        });
    };
    match shape {
        TopologyShape::Line { bridges: n } => {
            assert!(n >= 1, "a line needs at least one bridge");
            n_segments = n + 1;
            for i in 0..n {
                link(&mut bridges, i, i + 1);
            }
        }
        TopologyShape::Ring { bridges: n } => {
            assert!(n >= 2, "a ring needs at least two bridges");
            n_segments = n;
            for i in 0..n {
                link(&mut bridges, i, (i + 1) % n);
            }
        }
        TopologyShape::Star { arms } => {
            assert!(arms >= 1, "a star needs at least one arm");
            n_segments = arms + 1;
            for i in 0..arms {
                link(&mut bridges, 0, i + 1);
            }
        }
        TopologyShape::Tree { depth, fanout } => {
            assert!(depth >= 1 && fanout >= 1, "tree needs depth and fanout ≥ 1");
            n_segments = 1;
            let mut frontier = vec![0usize];
            for _ in 0..depth {
                let mut next = Vec::new();
                for &parent in &frontier {
                    for _ in 0..fanout {
                        let child = n_segments;
                        n_segments += 1;
                        link(&mut bridges, parent, child);
                        next.push(child);
                    }
                }
                frontier = next;
            }
        }
        TopologyShape::FullMesh { segments } => {
            assert!(segments >= 2, "a mesh needs at least two segments");
            n_segments = segments;
            for i in 0..segments {
                for j in (i + 1)..segments {
                    link(&mut bridges, i, j);
                }
            }
        }
        TopologyShape::Random {
            segments,
            extra_links,
        } => {
            assert!(segments >= 2, "a random graph needs at least two segments");
            n_segments = segments;
            // Random spanning tree: each new segment hangs off an earlier
            // one, so connectivity holds by construction.
            for i in 1..segments {
                let parent = wiring_rng.range(i as u64) as usize;
                link(&mut bridges, parent, i);
            }
            for _ in 0..extra_links {
                let a = wiring_rng.range(segments as u64) as usize;
                let mut b = wiring_rng.range(segments as u64) as usize;
                if a == b {
                    b = (b + 1) % segments;
                }
                link(&mut bridges, a.min(b), a.max(b));
            }
        }
        TopologyShape::Metro {
            spines,
            districts,
            leaves,
        } => {
            assert!(
                spines >= 1 && districts >= 1 && leaves >= 1,
                "a metro needs spines, districts and leaves ≥ 1"
            );
            // Backbone segments come first (they get the Backbone tier
            // below), joined in a line by spine bridges.
            n_segments = spines + districts * leaves;
            n_backbone = spines;
            for i in 0..spines.saturating_sub(1) {
                link(&mut bridges, i, i + 1);
            }
            for d in 0..districts {
                // District root hangs off its spine via the uplink
                // bridge; the rest of the district is a seeded-random
                // tree, like the Random shape but confined to the
                // district's own segments.
                let root = spines + d * leaves;
                link(&mut bridges, d % spines, root);
                for l in 1..leaves {
                    let parent = root + wiring_rng.range(l as u64) as usize;
                    link(&mut bridges, parent, root + l);
                }
            }
        }
    }
    assert!(
        n_segments <= MAX_SEGMENTS,
        "shape {shape:?} generates {n_segments} segments (cap {MAX_SEGMENTS})"
    );

    // Per-edge media mix. Access segments: mostly 100 Mb/s with an
    // occasional legacy 10 Mb/s segment, and propagation jitter in the
    // hundreds of metres. Backbone segments: uniform gigabit (a metro
    // core has no legacy media), same jitter draw.
    let segments = (0..n_segments)
        .map(|i| {
            if i < n_backbone {
                return SegmentSpec {
                    name: format!("spine{i}"),
                    bandwidth_bps: 1_000_000_000,
                    propagation: SimDuration::from_ns(500 + media_rng.range(1_500)),
                    tier: SegTier::Backbone,
                };
            }
            let bandwidth_bps = if media_rng.one_in(5) {
                10_000_000
            } else {
                100_000_000
            };
            let propagation = SimDuration::from_ns(500 + media_rng.range(1_500));
            SegmentSpec {
                name: format!("lan{i}"),
                bandwidth_bps,
                propagation,
                tier: SegTier::Access,
            }
        })
        .collect();

    Topology {
        shape,
        seed,
        segments,
        bridges,
    }
}

impl Topology {
    /// Does the wiring contain a physical loop? Every bridge here is an
    /// edge between two segments, so a connected graph has a cycle
    /// exactly when it has at least as many edges as vertices.
    pub fn cyclic(&self) -> bool {
        self.bridges.len() >= self.segments.len()
    }

    /// The switchlets a bridge of this topology should boot: learning
    /// everywhere, plus the 802.1D spanning tree when loops exist.
    pub fn default_boot(&self) -> &'static [&'static str] {
        if self.cyclic() {
            &["bridge_learning", "stp_ieee"]
        } else {
            &["bridge_learning"]
        }
    }

    /// Segment-to-segment adjacency (each bridge joins all its segment
    /// pairs).
    fn adjacency(&self) -> Vec<Vec<usize>> {
        let mut adj = vec![Vec::new(); self.segments.len()];
        for b in &self.bridges {
            for (i, &a) in b.segments.iter().enumerate() {
                for &c in &b.segments[i + 1..] {
                    adj[a].push(c);
                    adj[c].push(a);
                }
            }
        }
        adj
    }

    /// BFS hop distances from `from` (usize::MAX = unreachable).
    fn distances(&self, from: usize) -> Vec<usize> {
        let adj = self.adjacency();
        let mut dist = vec![usize::MAX; self.segments.len()];
        let mut queue = std::collections::VecDeque::from([from]);
        dist[from] = 0;
        while let Some(s) = queue.pop_front() {
            for &n in &adj[s] {
                if dist[n] == usize::MAX {
                    dist[n] = dist[s] + 1;
                    queue.push_back(n);
                }
            }
        }
        dist
    }

    /// Is every segment reachable from every other?
    pub fn is_connected(&self) -> bool {
        self.distances(0).iter().all(|&d| d != usize::MAX)
    }

    /// Indices of the segments hosts may be placed on (everything except
    /// the metro backbone; on non-metro shapes, every segment).
    pub fn access_segments(&self) -> Vec<usize> {
        self.segments
            .iter()
            .enumerate()
            .filter(|(_, s)| s.tier == SegTier::Access)
            .map(|(i, _)| i)
            .collect()
    }

    /// A pair of far-apart segments (two BFS passes): where end-to-end
    /// workloads place their endpoints to cross as many bridges as
    /// possible.
    pub fn far_pair(&self) -> (usize, usize) {
        let argmax = |d: &[usize]| {
            d.iter()
                .enumerate()
                .filter(|(_, &x)| x != usize::MAX)
                .max_by_key(|(_, &x)| x)
                .map(|(i, _)| i)
                .unwrap_or(0)
        };
        let u = argmax(&self.distances(0));
        let v = argmax(&self.distances(u));
        if u == v {
            (0, self.segments.len() - 1)
        } else {
            (u, v)
        }
    }
}

/// A topology materialized into a world.
#[derive(Clone, Debug)]
pub struct BuiltTopology {
    /// Segment ids, in spec order.
    pub segs: Vec<SegId>,
    /// Bridge node ids, in spec order.
    pub bridges: Vec<NodeId>,
}

/// Materialize `topo` into `world`, booting every bridge with `boot`
/// (on top of the network loader).
pub fn instantiate(
    world: &mut World,
    topo: &Topology,
    cfg: &BridgeConfig,
    boot: &[&str],
) -> BuiltTopology {
    let segs: Vec<SegId> = topo
        .segments
        .iter()
        .map(|spec| {
            world.add_segment(SegmentConfig {
                name: spec.name.clone(),
                bandwidth_bps: spec.bandwidth_bps,
                propagation: spec.propagation,
                ..SegmentConfig::default()
            })
        })
        .collect();
    let bridges = topo
        .bridges
        .iter()
        .map(|spec| {
            let ports: Vec<SegId> = spec.segments.iter().map(|&i| segs[i]).collect();
            prims::bridge(world, spec.index, &ports, cfg.clone(), boot)
        })
        .collect();
    BuiltTopology { segs, bridges }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_counts() {
        let t = generate(TopologyShape::Line { bridges: 3 }, 1);
        assert_eq!((t.segments.len(), t.bridges.len()), (4, 3));
        assert!(!t.cyclic());

        let t = generate(TopologyShape::Ring { bridges: 4 }, 1);
        assert_eq!((t.segments.len(), t.bridges.len()), (4, 4));
        assert!(t.cyclic());

        let t = generate(TopologyShape::Star { arms: 5 }, 1);
        assert_eq!((t.segments.len(), t.bridges.len()), (6, 5));
        assert!(!t.cyclic());

        let t = generate(
            TopologyShape::Tree {
                depth: 2,
                fanout: 2,
            },
            1,
        );
        assert_eq!((t.segments.len(), t.bridges.len()), (7, 6));
        assert!(!t.cyclic());

        let t = generate(TopologyShape::FullMesh { segments: 4 }, 1);
        assert_eq!((t.segments.len(), t.bridges.len()), (4, 6));
        assert!(t.cyclic());
    }

    #[test]
    fn random_is_connected_and_loops_iff_extra_links() {
        for seed in 0..20 {
            let tree = generate(
                TopologyShape::Random {
                    segments: 6,
                    extra_links: 0,
                },
                seed,
            );
            assert!(tree.is_connected());
            assert!(!tree.cyclic());
            let loopy = generate(
                TopologyShape::Random {
                    segments: 6,
                    extra_links: 2,
                },
                seed,
            );
            assert!(loopy.is_connected());
            assert!(loopy.cyclic());
        }
    }

    #[test]
    fn metro_counts_tiers_and_connectivity() {
        for seed in 0..8 {
            let t = generate(TopologyShape::metro_large(), seed);
            // 4 spines + 16 districts × 4 leaves; one bridge per
            // non-root segment keeps it a tree.
            assert_eq!((t.segments.len(), t.bridges.len()), (68, 67));
            assert!(t.is_connected());
            assert!(!t.cyclic(), "the metro tier is acyclic by construction");
            assert_eq!(t.access_segments().len(), 64);
            assert!(t
                .segments
                .iter()
                .take(4)
                .all(|s| s.tier == SegTier::Backbone && s.bandwidth_bps == 1_000_000_000));
            assert!(t.segments[4..].iter().all(|s| s.tier == SegTier::Access));
        }
        let t = generate(TopologyShape::metro_small(), 3);
        assert_eq!((t.segments.len(), t.bridges.len()), (10, 9));
        assert_eq!(t.access_segments().len(), 8);
        assert!(t.is_connected() && !t.cyclic());
    }

    #[test]
    fn metro_district_wiring_consumes_the_seed() {
        let shape = TopologyShape::metro_large();
        assert_eq!(generate(shape, 5), generate(shape, 5));
        assert_ne!(
            generate(shape, 5).bridges,
            generate(shape, 6).bridges,
            "district trees must be seeded-random"
        );
    }

    #[test]
    fn non_metro_shapes_are_all_access_tier() {
        let t = generate(TopologyShape::Star { arms: 3 }, 1);
        assert!(t.segments.iter().all(|s| s.tier == SegTier::Access));
        assert_eq!(t.access_segments().len(), t.segments.len());
    }

    #[test]
    fn far_pair_spans_the_line() {
        let t = generate(TopologyShape::Line { bridges: 4 }, 9);
        let (a, b) = t.far_pair();
        assert_eq!((a.min(b), a.max(b)), (0, 4));
    }

    #[test]
    fn same_seed_same_structure() {
        let shape = TopologyShape::Random {
            segments: 8,
            extra_links: 3,
        };
        assert_eq!(generate(shape, 42), generate(shape, 42));
        assert_ne!(
            generate(shape, 42).bridges,
            generate(shape, 43).bridges,
            "wiring must actually consume the seed"
        );
    }
}
