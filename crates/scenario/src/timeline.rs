//! Flight-recorder export: render an armed run's probe ring as a Chrome
//! trace-event (`chrome://tracing` / Perfetto "Load legacy trace")
//! JSON timeline, plus fixed-width summary tables.
//!
//! Track layout:
//!
//! * **pid 1 — segments**: one thread per LAN. Wire occupancy renders as
//!   complete (`"X"`) events spanning `[completion − serialization,
//!   completion]`; queue drops, fault injections and contended offers
//!   are instants.
//! * **pid 2 — bridges**: forwarding decisions (verdict, cache
//!   hit/miss, decision generation), switchlet executions (fuel, host
//!   calls) and timers.
//! * **pid 3 — hosts**: application phase marks (`ping.start`,
//!   `ttcp.done`, …) and timers.
//!
//! Timestamps are the probe records' simulated nanoseconds divided by
//! 1000 (the format wants microseconds); everything is derived from the
//! deterministic probe ring, so the rendered document is byte-identical
//! across runs and `--jobs` values.

use std::collections::HashMap;

use active_bridge::BridgeNode;
use netsim::{NodeId, ProbeRecord, World};

use crate::json::Json;
use crate::runner::Report;

/// Microsecond timestamp for the trace-event format. Integer nanosecond
/// halves render deterministically (`Json::F64` prints via `{n}`).
fn us(ns: u64) -> Json {
    Json::F64(ns as f64 / 1000.0)
}

fn instant(name: &str, pid: u64, tid: u64, ts_ns: u64, args: Vec<(&str, Json)>) -> Json {
    Json::obj(vec![
        ("name", Json::str(name)),
        ("ph", Json::str("i")),
        ("s", Json::str("t")),
        ("pid", Json::U64(pid)),
        ("tid", Json::U64(tid)),
        ("ts", us(ts_ns)),
        ("args", Json::obj(args)),
    ])
}

fn complete(
    name: &str,
    pid: u64,
    tid: u64,
    start_ns: u64,
    dur_ns: u64,
    args: Vec<(&str, Json)>,
) -> Json {
    Json::obj(vec![
        ("name", Json::str(name)),
        ("ph", Json::str("X")),
        ("pid", Json::U64(pid)),
        ("tid", Json::U64(tid)),
        ("ts", us(start_ns)),
        ("dur", us(dur_ns)),
        ("args", Json::obj(args)),
    ])
}

fn meta(name: &str, pid: u64, tid: Option<u64>, value: &str) -> Json {
    let mut members = vec![
        ("name", Json::str(name)),
        ("ph", Json::str("M")),
        ("pid", Json::U64(pid)),
    ];
    if let Some(tid) = tid {
        members.push(("tid", Json::U64(tid)));
    }
    members.push(("args", Json::obj(vec![("name", Json::str(value))])));
    Json::obj(members)
}

const PID_SEGMENTS: u64 = 1;
const PID_BRIDGES: u64 = 2;
const PID_HOSTS: u64 = 3;

/// Which track a node's events belong on.
fn node_pid(world: &World, node: NodeId) -> u64 {
    if world.try_node::<BridgeNode>(node).is_some() {
        PID_BRIDGES
    } else {
        PID_HOSTS
    }
}

/// Render the world's probe ring (plus run metadata) as a Chrome
/// trace-event document. The world must have finished a recorded run
/// ([`crate::runner::run_recorded`]).
pub fn timeline_json(world: &World, report: &Report) -> Json {
    let mut events = Vec::new();

    // Process/thread name metadata, emitted up front in index order.
    events.push(meta("process_name", PID_SEGMENTS, None, "segments"));
    events.push(meta("process_name", PID_BRIDGES, None, "bridges"));
    events.push(meta("process_name", PID_HOSTS, None, "hosts"));
    let stats = world.stats();
    for (i, seg) in stats.segments.iter().enumerate() {
        events.push(meta("thread_name", PID_SEGMENTS, Some(i as u64), &seg.name));
    }
    // Name every node track that will carry events.
    let mut node_named = vec![false; world.num_nodes()];
    let mut name_node = |events: &mut Vec<Json>, node: NodeId| {
        if !node_named[node.0] {
            node_named[node.0] = true;
            events.push(meta(
                "thread_name",
                node_pid(world, node),
                Some(node.0 as u64),
                world.node_name(node),
            ));
        }
    };

    // Chaos down-time renders as complete spans: a LinkDown / NodeCrash
    // opens a window, the matching LinkUp / NodeRestart closes it.
    let mut seg_down: HashMap<u64, u64> = HashMap::new();
    let mut node_down: HashMap<usize, u64> = HashMap::new();
    // Gilbert–Elliott bad-state windows render the same way: a
    // `FaultBurst { bad: true }` opens, the matching `bad: false` closes.
    let mut burst_open: HashMap<u64, u64> = HashMap::new();

    for ev in world.probe().records() {
        let ns = ev.at.as_ns();
        match ev.record {
            ProbeRecord::FrameOffered {
                seg, queued, depth, ..
            } => {
                // Uncontended offers are implied by their WireTx span;
                // only queueing (contention evidence) gets an instant.
                if queued {
                    events.push(instant(
                        "queued",
                        PID_SEGMENTS,
                        seg.0 as u64,
                        ns,
                        vec![("depth", Json::U64(depth as u64))],
                    ));
                }
            }
            ProbeRecord::QueueDrop { seg, src, len } => {
                events.push(instant(
                    "queue_drop",
                    PID_SEGMENTS,
                    seg.0 as u64,
                    ns,
                    vec![
                        ("src", Json::str(world.node_name(src.0))),
                        ("len", Json::U64(len as u64)),
                    ],
                ));
            }
            ProbeRecord::WireTx {
                seg,
                src,
                len,
                ser_ns,
            } => {
                events.push(complete(
                    "tx",
                    PID_SEGMENTS,
                    seg.0 as u64,
                    ns.saturating_sub(ser_ns),
                    ser_ns,
                    vec![
                        ("src", Json::str(world.node_name(src.0))),
                        ("port", Json::U64(src.1 .0 as u64)),
                        ("len", Json::U64(len as u64)),
                    ],
                ));
            }
            ProbeRecord::FaultDrop { seg, len } => {
                events.push(instant(
                    "fault_drop",
                    PID_SEGMENTS,
                    seg.0 as u64,
                    ns,
                    vec![("len", Json::U64(len as u64))],
                ));
            }
            ProbeRecord::FaultCorrupt { seg, len } => {
                events.push(instant(
                    "fault_corrupt",
                    PID_SEGMENTS,
                    seg.0 as u64,
                    ns,
                    vec![("len", Json::U64(len as u64))],
                ));
            }
            ProbeRecord::FaultDuplicate { seg, len } => {
                events.push(instant(
                    "fault_duplicate",
                    PID_SEGMENTS,
                    seg.0 as u64,
                    ns,
                    vec![("len", Json::U64(len as u64))],
                ));
            }
            ProbeRecord::FaultBurst { seg, bad } => {
                let tid = seg.0 as u64;
                if bad {
                    burst_open.entry(tid).or_insert(ns);
                } else {
                    match burst_open.remove(&tid) {
                        Some(start) => {
                            events.push(complete(
                                "burst",
                                PID_SEGMENTS,
                                tid,
                                start,
                                ns - start,
                                vec![],
                            ));
                        }
                        // A burst whose entry record fell off the ring
                        // still marks its end.
                        None => events.push(instant("burst_end", PID_SEGMENTS, tid, ns, vec![])),
                    }
                }
            }
            // Deliveries are numerous and implied by the wire span; the
            // ring keeps them for programmatic consumers, the timeline
            // skips them.
            ProbeRecord::Deliver { .. } => {}
            ProbeRecord::Decision {
                node,
                port,
                verdict,
                cache_hit,
                generation,
            } => {
                name_node(&mut events, node);
                events.push(instant(
                    verdict,
                    node_pid(world, node),
                    node.0 as u64,
                    ns,
                    vec![
                        ("port", Json::U64(port.0 as u64)),
                        ("cache_hit", Json::Bool(cache_hit)),
                        ("generation", Json::U64(generation)),
                    ],
                ));
            }
            // Begin/end land at the same simulated instant (execution
            // is costed, not simulated); the end record carries the
            // numbers.
            ProbeRecord::ExecBegin { .. } => {}
            ProbeRecord::ExecEnd {
                node,
                fuel,
                host_calls,
            } => {
                name_node(&mut events, node);
                events.push(instant(
                    "exec",
                    node_pid(world, node),
                    node.0 as u64,
                    ns,
                    vec![
                        ("fuel", Json::U64(fuel)),
                        ("host_calls", Json::U64(host_calls)),
                    ],
                ));
            }
            ProbeRecord::TimerArm { node, id, deadline } => {
                name_node(&mut events, node);
                events.push(instant(
                    "timer_arm",
                    node_pid(world, node),
                    node.0 as u64,
                    ns,
                    vec![
                        ("id", Json::U64(id)),
                        ("deadline_ns", Json::U64(deadline.as_ns())),
                    ],
                ));
            }
            ProbeRecord::TimerFire { node, id } => {
                name_node(&mut events, node);
                events.push(instant(
                    "timer_fire",
                    node_pid(world, node),
                    node.0 as u64,
                    ns,
                    vec![("id", Json::U64(id))],
                ));
            }
            ProbeRecord::TimerCancel { node, id } => {
                name_node(&mut events, node);
                events.push(instant(
                    "timer_cancel",
                    node_pid(world, node),
                    node.0 as u64,
                    ns,
                    vec![("id", Json::U64(id))],
                ));
            }
            ProbeRecord::Mark { node, label } => {
                name_node(&mut events, node);
                events.push(instant(
                    label,
                    node_pid(world, node),
                    node.0 as u64,
                    ns,
                    vec![],
                ));
            }
            ProbeRecord::LinkDown { seg } => {
                seg_down.entry(seg.0 as u64).or_insert(ns);
            }
            ProbeRecord::LinkUp { seg } => {
                let tid = seg.0 as u64;
                match seg_down.remove(&tid) {
                    Some(start) => {
                        events.push(complete(
                            "down",
                            PID_SEGMENTS,
                            tid,
                            start,
                            ns - start,
                            vec![],
                        ));
                    }
                    // A heal with no recorded outage (e.g. the ring
                    // displaced the LinkDown record) still shows up.
                    None => events.push(instant("link_up", PID_SEGMENTS, tid, ns, vec![])),
                }
            }
            ProbeRecord::NodeCrash { node } => {
                name_node(&mut events, node);
                node_down.entry(node.0).or_insert(ns);
            }
            ProbeRecord::NodeRestart { node } => {
                name_node(&mut events, node);
                let pid = node_pid(world, node);
                match node_down.remove(&node.0) {
                    Some(start) => {
                        events.push(complete(
                            "crashed",
                            pid,
                            node.0 as u64,
                            start,
                            ns - start,
                            vec![],
                        ));
                    }
                    None => events.push(instant("restart", pid, node.0 as u64, ns, vec![])),
                }
            }
            ProbeRecord::Quarantine { node } => {
                name_node(&mut events, node);
                events.push(instant(
                    "quarantine",
                    node_pid(world, node),
                    node.0 as u64,
                    ns,
                    vec![],
                ));
            }
            // Defense-plane records: each is an instant on the bridge's
            // track carrying the port it fired on.
            ProbeRecord::LearnEvict { node, port }
            | ProbeRecord::LearnReject { node, port }
            | ProbeRecord::PortSuppressed { node, port }
            | ProbeRecord::PortReleased { node, port }
            | ProbeRecord::BpduGuardTrip { node, port } => {
                let label = match ev.record {
                    ProbeRecord::LearnEvict { .. } => "learn_evict",
                    ProbeRecord::LearnReject { .. } => "learn_reject",
                    ProbeRecord::PortSuppressed { .. } => "port_suppressed",
                    ProbeRecord::PortReleased { .. } => "port_released",
                    _ => "bpdu_guard_trip",
                };
                name_node(&mut events, node);
                events.push(instant(
                    label,
                    node_pid(world, node),
                    node.0 as u64,
                    ns,
                    vec![("port", Json::U64(port.0 as u64))],
                ));
            }
        }
    }

    // Outages still open at the horizon render as spans reaching it
    // (sorted for byte-deterministic output).
    let end_ns = report.end.as_ns();
    let mut open_segs: Vec<(u64, u64)> = seg_down.into_iter().collect();
    open_segs.sort_unstable();
    for (tid, start) in open_segs {
        events.push(complete(
            "down",
            PID_SEGMENTS,
            tid,
            start,
            end_ns.saturating_sub(start),
            vec![],
        ));
    }
    let mut open_bursts: Vec<(u64, u64)> = burst_open.into_iter().collect();
    open_bursts.sort_unstable();
    for (tid, start) in open_bursts {
        events.push(complete(
            "burst",
            PID_SEGMENTS,
            tid,
            start,
            end_ns.saturating_sub(start),
            vec![],
        ));
    }
    let mut open_nodes: Vec<(usize, u64)> = node_down.into_iter().collect();
    open_nodes.sort_unstable();
    for (id, start) in open_nodes {
        let node = NodeId(id);
        events.push(complete(
            "crashed",
            node_pid(world, node),
            id as u64,
            start,
            end_ns.saturating_sub(start),
            vec![],
        ));
    }

    let probe = world.probe();
    Json::obj(vec![
        ("traceEvents", Json::Arr(events)),
        ("displayTimeUnit", Json::str("ms")),
        (
            "otherData",
            Json::obj(vec![
                ("scenario", Json::str(&report.scenario.name)),
                ("seed", Json::U64(report.scenario.seed)),
                ("records", Json::U64(probe.len() as u64)),
                ("records_dropped", Json::U64(probe.dropped())),
                ("end_ns", Json::U64(report.end.as_ns())),
            ]),
        ),
    ])
}

/// Fixed-width summary tables for a recorded run: per-bridge hot
/// switchlet functions (the JIT promotion signal) and per-segment queue
/// occupancy.
pub fn summary_tables(world: &World, report: &Report) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();

    let _ = writeln!(out, "hot switchlet functions (inclusive fuel)");
    let _ = writeln!(
        out,
        "  {:<12} {:<14} {:<16} {:>10} {:>12}",
        "bridge", "module", "function", "calls", "fuel"
    );
    let mut any = false;
    for id in 0..world.num_nodes() {
        let node = NodeId(id);
        let Some(bridge) = world.try_node::<BridgeNode>(node) else {
            continue;
        };
        let mut lines = bridge.hot_functions();
        // Hottest first; ties break on the deterministic name pair.
        lines.sort_by(|a, b| {
            b.2.fuel
                .cmp(&a.2.fuel)
                .then_with(|| (&a.0, &a.1).cmp(&(&b.0, &b.1)))
        });
        for (module, func, c) in lines {
            any = true;
            let _ = writeln!(
                out,
                "  {:<12} {:<14} {:<16} {:>10} {:>12}",
                world.node_name(node),
                module,
                func,
                c.calls,
                c.fuel
            );
        }
    }
    if !any {
        let _ = writeln!(out, "  (no VM switchlet executions recorded)");
    }

    let _ = writeln!(out);
    let _ = writeln!(out, "segment queue occupancy");
    let _ = writeln!(
        out,
        "  {:<12} {:>10} {:>10} {:>10} {:>12}",
        "segment", "tx_frames", "peak_queue", "cap", "queue_drops"
    );
    for (i, s) in report.world.segments.iter().enumerate() {
        let cap = world.segment(netsim::SegId(i)).queue_cap();
        let _ = writeln!(
            out,
            "  {:<12} {:>10} {:>10} {:>10} {:>12}",
            s.name, s.counters.tx_frames, s.counters.peak_queue, cap, s.counters.queue_drops
        );
    }

    let probe = world.probe();
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "probe ring: {} records kept, {} displaced (capacity {})",
        probe.len(),
        probe.dropped(),
        probe.capacity()
    );
    out
}

/// Validate a rendered timeline document (the CI gate): parses it with
/// the in-repo JSON parser and checks the trace-event contract —
/// `traceEvents` array whose members carry `name`/`ph`/`pid`/`tid`, a
/// numeric `ts` on every non-metadata event, and a `dur` on every
/// complete (`"X"`) event. Returns the event count.
pub fn validate_timeline(src: &str) -> Result<usize, String> {
    let doc = Json::parse(src)?;
    let Some(Json::Arr(events)) = doc.get("traceEvents") else {
        return Err("missing traceEvents array".into());
    };
    for (i, ev) in events.iter().enumerate() {
        let ph = match ev.get("ph") {
            Some(Json::Str(s)) => s.as_str(),
            _ => return Err(format!("event {i}: missing ph")),
        };
        if !matches!(ev.get("name"), Some(Json::Str(_))) {
            return Err(format!("event {i}: missing name"));
        }
        if ev.get("pid").and_then(Json::as_f64).is_none() {
            return Err(format!("event {i}: missing pid"));
        }
        match ph {
            "M" => {}
            "i" | "X" => {
                if ev.get("tid").and_then(Json::as_f64).is_none() {
                    return Err(format!("event {i}: missing tid"));
                }
                if ev.get("ts").and_then(Json::as_f64).is_none() {
                    return Err(format!("event {i}: missing ts"));
                }
                if ph == "X" && ev.get("dur").and_then(Json::as_f64).is_none() {
                    return Err(format!("event {i}: X event missing dur"));
                }
            }
            other => return Err(format!("event {i}: unexpected ph {other:?}")),
        }
    }
    if events.is_empty() {
        return Err("empty traceEvents".into());
    }
    Ok(events.len())
}
