//! Sweeps: run a battery of scenarios across many shapes and seeds and
//! aggregate the verdicts into one report with a summary score — the
//! `netmeasure2`-style "battery of experiments, machine-readable results,
//! one number at the end".

use netsim::{SimDuration, World};

use crate::exec;
use crate::json::Json;
use crate::runner::{self, Report, Scenario};
use crate::topo::TopologyShape;
use crate::workload::BatteryKind;

/// A sweep: the cartesian product of shapes × batteries, seeded.
#[derive(Clone, Debug)]
pub struct SweepSpec {
    /// Shapes to cover.
    pub shapes: Vec<TopologyShape>,
    /// Batteries to run on each shape.
    pub batteries: Vec<BatteryKind>,
    /// Base seed; run `i` uses `seed + i`.
    pub seed: u64,
    /// Per-scenario duration override (None = auto).
    pub duration: Option<SimDuration>,
    /// When set, every `(shape, battery)` cell runs **twice** on the same
    /// seed: once as scheduled (the undefended control arm) and once with
    /// `Scenario::defended` set (name suffixed `-defended`). Only the
    /// adversarial sweep turns this on.
    pub defended_arms: bool,
}

impl SweepSpec {
    /// The default sweep: seven shapes (line, ring, star, tree, full
    /// mesh, random redundant graph, small metro) × five batteries,
    /// small enough to run in tests and CI — and the committed job set
    /// the parallel execution plane is benchmarked and gated on.
    pub fn default_sweep(seed: u64) -> SweepSpec {
        SweepSpec {
            shapes: vec![
                TopologyShape::Line { bridges: 2 },
                TopologyShape::Ring { bridges: 3 },
                TopologyShape::Star { arms: 3 },
                TopologyShape::Tree {
                    depth: 2,
                    fanout: 2,
                },
                TopologyShape::FullMesh { segments: 3 },
                TopologyShape::Random {
                    segments: 4,
                    extra_links: 1,
                },
                TopologyShape::metro_small(),
            ],
            batteries: vec![
                BatteryKind::Pings,
                BatteryKind::Streams,
                BatteryKind::Uploads,
                BatteryKind::Metro,
                BatteryKind::Contention,
            ],
            seed,
            duration: None,
            defended_arms: false,
        }
    }

    /// The chaos sweep: one learning-only and one spanning-tree shape ×
    /// the chaos battery — the robustness gate CI renders at several
    /// worker counts and byte-compares. Kept out of [`default_sweep`] so
    /// the committed quality-gate job set (and its scores) is unchanged.
    pub fn chaos_sweep(seed: u64) -> SweepSpec {
        SweepSpec {
            shapes: vec![
                TopologyShape::Line { bridges: 2 },
                TopologyShape::Ring { bridges: 3 },
            ],
            batteries: vec![BatteryKind::Chaos],
            seed,
            duration: None,
            defended_arms: false,
        }
    }

    /// The lossy sweep: the same two shapes as the chaos sweep × the
    /// lossy battery — the hostile-media gate CI renders at several
    /// worker counts, byte-compares, and holds to the four resilience
    /// invariants. Kept out of [`default_sweep`] for the same reason as
    /// the chaos sweep.
    pub fn lossy_sweep(seed: u64) -> SweepSpec {
        SweepSpec {
            shapes: vec![
                TopologyShape::Line { bridges: 2 },
                TopologyShape::Ring { bridges: 3 },
            ],
            batteries: vec![BatteryKind::Lossy],
            seed,
            duration: None,
            defended_arms: false,
        }
    }

    /// The adversarial sweep: the same two shapes as the chaos sweep ×
    /// the adversarial battery, each cell run as an A/B pair — an
    /// undefended control arm proving the attacks bite, and a defended
    /// arm (bounded learning, storm policing, BPDU guard) proving the
    /// victims survive them. Kept out of [`default_sweep`] for the same
    /// reason as the chaos sweep.
    pub fn adversarial_sweep(seed: u64) -> SweepSpec {
        SweepSpec {
            shapes: vec![
                TopologyShape::Line { bridges: 2 },
                TopologyShape::Ring { bridges: 3 },
            ],
            batteries: vec![BatteryKind::Adversarial],
            seed,
            duration: None,
            defended_arms: true,
        }
    }

    /// The scenarios this sweep runs, in order.
    pub fn scenarios(&self) -> Vec<Scenario> {
        let mut out = Vec::new();
        for (i, &shape) in self.shapes.iter().enumerate() {
            for (j, &battery) in self.batteries.iter().enumerate() {
                let mut sc = Scenario::new(
                    shape,
                    battery,
                    self.seed + (i * self.batteries.len() + j) as u64,
                );
                sc.duration = self.duration;
                if self.defended_arms {
                    // Same seed on purpose: both arms replay the exact
                    // same offense, so any difference is the defenses.
                    let mut defended = sc.clone();
                    defended.defended = true;
                    defended.name = format!("{}-defended", sc.name);
                    out.push(sc);
                    out.push(defended);
                } else {
                    out.push(sc);
                }
            }
        }
        out
    }
}

/// Every scenario's report plus the aggregate verdict.
#[derive(Clone, Debug)]
pub struct SweepReport {
    /// Per-scenario reports, in sweep order.
    pub runs: Vec<Report>,
}

impl SweepReport {
    /// Did every run pass every invariant?
    pub fn passed(&self) -> bool {
        self.runs.iter().all(Report::passed)
    }

    /// `(passed, failed, waived)` invariant counts across all runs.
    pub fn verdict_counts(&self) -> (u64, u64, u64) {
        self.runs.iter().fold((0, 0, 0), |acc, r| {
            let (p, f, w) = r.verdict_counts();
            (acc.0 + p, acc.1 + f, acc.2 + w)
        })
    }

    /// The whole sweep as one JSON document.
    pub fn to_json(&self) -> Json {
        let (passed, failed, waived) = self.verdict_counts();
        let total = passed + failed;
        // Quality aggregation: the floor mean and minimum of every
        // scored scenario's overall quality.
        let overalls: Vec<u64> = self
            .runs
            .iter()
            .filter_map(|r| crate::quality::score_report(r).overall)
            .collect();
        let quality = Json::obj(vec![
            ("scenarios_scored", Json::U64(overalls.len() as u64)),
            (
                "mean",
                match overalls.is_empty() {
                    true => Json::Null,
                    false => Json::U64(overalls.iter().sum::<u64>() / overalls.len() as u64),
                },
            ),
            (
                "min",
                overalls
                    .iter()
                    .copied()
                    .min()
                    .map(Json::U64)
                    .unwrap_or(Json::Null),
            ),
        ]);
        Json::obj(vec![
            (
                "runs",
                Json::Arr(self.runs.iter().map(Report::to_json).collect()),
            ),
            (
                "summary",
                Json::obj(vec![
                    ("scenarios", Json::U64(self.runs.len() as u64)),
                    (
                        "scenarios_passed",
                        Json::U64(self.runs.iter().filter(|r| r.passed()).count() as u64),
                    ),
                    ("invariants_passed", Json::U64(passed)),
                    ("invariants_failed", Json::U64(failed)),
                    ("invariants_waived", Json::U64(waived)),
                    (
                        // `None` — not a perfect 100 — when every judged
                        // invariant was waived (see `Report::to_json`).
                        "score_percent",
                        match (passed * 100).checked_div(total) {
                            Some(pct) => Json::U64(pct),
                            None => Json::Null,
                        },
                    ),
                    ("pass", Json::Bool(self.passed())),
                    ("quality", quality),
                ]),
            ),
        ])
    }
}

/// Run every scenario in the sweep on the calling thread (equivalent to
/// [`run_sweep_jobs`] with one job).
pub fn run_sweep(spec: &SweepSpec) -> SweepReport {
    run_sweep_jobs(spec, 1)
}

/// Run the sweep across up to `jobs` worker threads. Each worker owns
/// one reusable [`World`] (reset per scenario, so consecutive runs
/// amortize its allocations) and each scenario is constructed, run and
/// scored entirely inside one worker; the per-scenario reports are
/// merged in sweep order. The report — and its JSON rendering — is
/// **byte-identical** for every `jobs` value.
pub fn run_sweep_jobs(spec: &SweepSpec, jobs: usize) -> SweepReport {
    run_sweep_jobs_profiled(spec, jobs).0
}

/// [`run_sweep_jobs`] plus the pool's self-profile (per-job wall/queue
/// times, per-worker utilization — see [`exec::PoolProfile`]). The
/// profile is wall-clock and renders to stderr only; the sweep report
/// stays byte-identical across `jobs` values.
pub fn run_sweep_jobs_profiled(spec: &SweepSpec, jobs: usize) -> (SweepReport, exec::PoolProfile) {
    let (runs, profile) = exec::run_jobs_local_profiled(
        spec.scenarios(),
        jobs,
        || World::new(0),
        |world, sc| runner::run_in(world, &sc),
    );
    (SweepReport { runs }, profile)
}
