//! `ab_scenario` — render scenario sweeps and analyze their reports
//! offline, in the spirit of `netmeasure2`'s `showbat`.
//!
//! ```sh
//! ab_scenario render --jobs 4 --seed 42 > sweep.json
//! ab_scenario analyze sweep.json                 # per-scenario scorecards
//! ab_scenario analyze sweep.json --assert-score 60   # CI gate
//! ```
//!
//! `render` runs the default sweep and prints the JSON document (byte-
//! identical for every `--jobs` value). `analyze` consumes a sweep JSON
//! — a file, or stdin with `-` — and prints one scorecard line per
//! scenario plus the sweep's overall quality score, entirely offline;
//! `--assert-score N` exits non-zero when the overall score is below
//! `N` (or missing), which is what CI gates on.

use std::io::Read as _;

use ab_scenario::quality;
use ab_scenario::sweep::{run_sweep_jobs, SweepSpec};
use ab_scenario::Json;

fn usage() -> ! {
    eprintln!(
        "usage:\n  ab_scenario render [--jobs N] [--seed S]\n  \
         ab_scenario analyze <sweep.json|-> [--assert-score N]"
    );
    std::process::exit(2);
}

fn main() {
    let mut args = std::env::args().skip(1);
    match args.next().as_deref() {
        Some("render") => render(args),
        Some("analyze") => analyze(args),
        _ => usage(),
    }
}

fn render(mut args: impl Iterator<Item = String>) {
    let mut jobs = ab_scenario::default_jobs();
    let mut seed = 42u64;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--jobs" => {
                let v = args.next().unwrap_or_else(|| usage());
                jobs = ab_scenario::parse_jobs(&v).unwrap_or_else(|| usage());
            }
            "--seed" => {
                let v = args.next().unwrap_or_else(|| usage());
                seed = v.parse().unwrap_or_else(|_| usage());
            }
            _ => usage(),
        }
    }
    let report = run_sweep_jobs(&SweepSpec::default_sweep(seed), jobs);
    print!("{}", report.to_json().render_pretty());
}

fn analyze(mut args: impl Iterator<Item = String>) {
    let Some(path) = args.next() else { usage() };
    let mut assert_score = None;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--assert-score" => {
                let v = args.next().unwrap_or_else(|| usage());
                assert_score = Some(v.parse::<u64>().unwrap_or_else(|_| usage()));
            }
            _ => usage(),
        }
    }
    let text = if path == "-" {
        let mut buf = String::new();
        std::io::stdin()
            .read_to_string(&mut buf)
            .unwrap_or_else(|e| {
                eprintln!("reading stdin: {e}");
                std::process::exit(1);
            });
        buf
    } else {
        std::fs::read_to_string(&path).unwrap_or_else(|e| {
            eprintln!("reading {path}: {e}");
            std::process::exit(1);
        })
    };
    let sweep = Json::parse(&text).unwrap_or_else(|e| {
        eprintln!("parsing {path}: {e}");
        std::process::exit(1);
    });
    let cards = quality::sweep_scorecards(&sweep).unwrap_or_else(|e| {
        eprintln!("analyzing {path}: {e}");
        std::process::exit(1);
    });
    print!("{cards}");
    if let Some(floor) = assert_score {
        match quality::sweep_overall(&sweep).expect("scorecards already validated the document") {
            Some(overall) if overall >= floor => {
                eprintln!("quality {overall} >= required {floor}");
            }
            Some(overall) => {
                eprintln!("quality {overall} is below the required {floor}");
                std::process::exit(1);
            }
            None => {
                eprintln!("no scenario produced a quality score; cannot assert {floor}");
                std::process::exit(1);
            }
        }
    }
}
