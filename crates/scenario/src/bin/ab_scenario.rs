//! `ab_scenario` — render scenario sweeps and analyze their reports
//! offline, in the spirit of `netmeasure2`'s `showbat`.
//!
//! ```sh
//! ab_scenario render --jobs 4 --seed 42 > sweep.json
//! ab_scenario render --sweep chaos > chaos.json  # robustness battery
//! ab_scenario analyze sweep.json                 # per-scenario scorecards
//! ab_scenario analyze sweep.json --assert-score 60   # CI gate
//! ab_scenario analyze chaos.json --assert-pass   # recovery-invariant gate
//! ab_scenario trace metro pings > trace.json     # flight-recorder timeline
//! ab_scenario validate-trace trace.json          # structural check (CI)
//! ```
//!
//! `render` runs the default sweep and prints the JSON document (byte-
//! identical for every `--jobs` value; `--profile` prints the exec
//! pool's self-profile to stderr). `analyze` consumes a sweep JSON
//! — a file, or stdin with `-` — and prints one scorecard line per
//! scenario plus the sweep's overall quality score, entirely offline;
//! `--assert-score N` exits non-zero when the overall score is below
//! `N` (or missing), which is what CI gates on.
//!
//! `trace` runs **one** scenario with the flight recorder armed and
//! prints a Chrome trace-event / Perfetto-compatible timeline to stdout
//! (load it via `chrome://tracing` or Perfetto's "legacy trace" path);
//! hot-function and segment-queue summary tables go to stderr. The
//! document is deterministic: same shape/battery/seed → byte-identical
//! JSON. `validate-trace` re-parses an emitted document with the
//! in-repo JSON parser and checks the trace-event contract.

use std::io::Read as _;

use ab_scenario::quality;
use ab_scenario::runner::Scenario;
use ab_scenario::sweep::{run_sweep_jobs_profiled, SweepSpec};
use ab_scenario::topo::TopologyShape;
use ab_scenario::workload::BatteryKind;
use ab_scenario::{timeline, Json};

/// Every sweep `render --sweep` accepts, in the order they are listed in
/// the usage text. Kept in sync with [`sweep_spec`] by a unit test.
const SWEEP_NAMES: [&str; 4] = ["default", "chaos", "lossy", "adversarial"];

/// Resolve a `--sweep` name to its spec.
fn sweep_spec(name: &str, seed: u64) -> Option<SweepSpec> {
    Some(match name {
        "default" => SweepSpec::default_sweep(seed),
        "chaos" => SweepSpec::chaos_sweep(seed),
        "lossy" => SweepSpec::lossy_sweep(seed),
        "adversarial" => SweepSpec::adversarial_sweep(seed),
        _ => return None,
    })
}

fn usage() -> ! {
    eprintln!(
        "usage:\n  ab_scenario render [--jobs N] [--seed S] [--sweep {}] [--profile]\n  \
         ab_scenario analyze <sweep.json|-> [--assert-score N] [--assert-pass]\n  \
         ab_scenario trace <shape> <battery> [--seed S] [--capacity N] [--defended]\n  \
         ab_scenario validate-trace <trace.json|->\n\n\
         shapes: line ring star tree full_mesh random metro metro_large\n\
         batteries: pings streams uploads churn metro contention chaos lossy adversarial",
        SWEEP_NAMES.join("|")
    );
    std::process::exit(2);
}

fn main() {
    let mut args = std::env::args().skip(1);
    match args.next().as_deref() {
        Some("render") => render(args),
        Some("analyze") => analyze(args),
        Some("trace") => trace(args),
        Some("validate-trace") => validate_trace(args),
        _ => usage(),
    }
}

/// Parse a shape label into the default-sweep parameterization (plus
/// the large metro tier, which the sweep reserves for benches).
fn parse_shape(label: &str) -> Option<TopologyShape> {
    Some(match label {
        "line" => TopologyShape::Line { bridges: 2 },
        "ring" => TopologyShape::Ring { bridges: 3 },
        "star" => TopologyShape::Star { arms: 3 },
        "tree" => TopologyShape::Tree {
            depth: 2,
            fanout: 2,
        },
        "full_mesh" => TopologyShape::FullMesh { segments: 3 },
        "random" => TopologyShape::Random {
            segments: 4,
            extra_links: 1,
        },
        "metro" => TopologyShape::metro_small(),
        "metro_large" => TopologyShape::metro_large(),
        _ => return None,
    })
}

fn parse_battery(label: &str) -> Option<BatteryKind> {
    Some(match label {
        "pings" => BatteryKind::Pings,
        "streams" => BatteryKind::Streams,
        "uploads" => BatteryKind::Uploads,
        "churn" => BatteryKind::Churn,
        "metro" => BatteryKind::Metro,
        "contention" => BatteryKind::Contention,
        "chaos" => BatteryKind::Chaos,
        "lossy" => BatteryKind::Lossy,
        "adversarial" => BatteryKind::Adversarial,
        _ => return None,
    })
}

fn render(mut args: impl Iterator<Item = String>) {
    let mut jobs = ab_scenario::default_jobs();
    let mut seed = 42u64;
    let mut profile = false;
    let mut sweep = "default".to_owned();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--jobs" => {
                let v = args.next().unwrap_or_else(|| usage());
                jobs = ab_scenario::parse_jobs(&v).unwrap_or_else(|| usage());
            }
            "--seed" => {
                let v = args.next().unwrap_or_else(|| usage());
                seed = v.parse().unwrap_or_else(|_| usage());
            }
            "--sweep" => sweep = args.next().unwrap_or_else(|| usage()),
            "--profile" => profile = true,
            _ => usage(),
        }
    }
    let spec = sweep_spec(&sweep, seed).unwrap_or_else(|| {
        eprintln!(
            "unknown sweep {sweep:?} (expected one of: {})",
            SWEEP_NAMES.join(", ")
        );
        usage();
    });
    let (report, pool) = run_sweep_jobs_profiled(&spec, jobs);
    if profile {
        eprint!("{}", pool.render());
    }
    print!("{}", report.to_json().render_pretty());
}

fn trace(mut args: impl Iterator<Item = String>) {
    let Some(shape_label) = args.next() else {
        usage()
    };
    let Some(battery_label) = args.next() else {
        usage()
    };
    let Some(shape) = parse_shape(&shape_label) else {
        eprintln!("unknown shape {shape_label:?}");
        usage();
    };
    let Some(battery) = parse_battery(&battery_label) else {
        eprintln!("unknown battery {battery_label:?}");
        usage();
    };
    let mut seed = 42u64;
    let mut probe = netsim::ProbeConfig::default();
    let mut defended = false;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--seed" => {
                let v = args.next().unwrap_or_else(|| usage());
                seed = v.parse().unwrap_or_else(|_| usage());
            }
            "--capacity" => {
                let v = args.next().unwrap_or_else(|| usage());
                probe.capacity = v.parse().unwrap_or_else(|_| usage());
            }
            "--defended" => defended = true,
            _ => usage(),
        }
    }
    let mut scenario = Scenario::new(shape, battery, seed);
    scenario.defended = defended;
    let (report, digest, world) = ab_scenario::run_recorded(&scenario, probe);
    eprintln!(
        "{}: digest {digest:#018x}, {} invariants, pass={}",
        scenario.name,
        report.invariants.len(),
        report.passed()
    );
    eprint!("{}", timeline::summary_tables(&world, &report));
    print!(
        "{}",
        timeline::timeline_json(&world, &report).render_pretty()
    );
}

fn validate_trace(mut args: impl Iterator<Item = String>) {
    let Some(path) = args.next() else { usage() };
    let text = read_input(&path);
    match timeline::validate_timeline(&text) {
        Ok(n) => eprintln!("{path}: valid trace-event document, {n} events"),
        Err(e) => {
            eprintln!("{path}: invalid trace document: {e}");
            std::process::exit(1);
        }
    }
}

fn read_input(path: &str) -> String {
    if path == "-" {
        let mut buf = String::new();
        std::io::stdin()
            .read_to_string(&mut buf)
            .unwrap_or_else(|e| {
                eprintln!("reading stdin: {e}");
                std::process::exit(1);
            });
        buf
    } else {
        std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("reading {path}: {e}");
            std::process::exit(1);
        })
    }
}

fn analyze(mut args: impl Iterator<Item = String>) {
    let Some(path) = args.next() else { usage() };
    let mut assert_score = None;
    let mut assert_pass = false;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--assert-score" => {
                let v = args.next().unwrap_or_else(|| usage());
                assert_score = Some(v.parse::<u64>().unwrap_or_else(|_| usage()));
            }
            "--assert-pass" => assert_pass = true,
            _ => usage(),
        }
    }
    let text = read_input(&path);
    let sweep = Json::parse(&text).unwrap_or_else(|e| {
        eprintln!("parsing {path}: {e}");
        std::process::exit(1);
    });
    let cards = quality::sweep_scorecards(&sweep).unwrap_or_else(|e| {
        eprintln!("analyzing {path}: {e}");
        std::process::exit(1);
    });
    print!("{cards}");
    if assert_pass {
        match sweep.get("summary").and_then(|s| s.get("pass")) {
            Some(Json::Bool(true)) => eprintln!("every scenario passed its invariants"),
            Some(Json::Bool(false)) => {
                eprintln!("a scenario failed an invariant (see scorecards above)");
                std::process::exit(1);
            }
            _ => {
                eprintln!("not a sweep document: no summary.pass");
                std::process::exit(1);
            }
        }
    }
    if let Some(floor) = assert_score {
        match quality::sweep_overall(&sweep).expect("scorecards already validated the document") {
            Some(overall) if overall >= floor => {
                eprintln!("quality {overall} >= required {floor}");
            }
            Some(overall) => {
                eprintln!("quality {overall} is below the required {floor}");
                std::process::exit(1);
            }
            None => {
                eprintln!("no scenario produced a quality score; cannot assert {floor}");
                std::process::exit(1);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::{sweep_spec, SWEEP_NAMES};

    /// The advertised sweep list and the resolver must never drift: every
    /// listed name resolves, no duplicates, and anything else is refused.
    #[test]
    fn sweep_names_match_the_resolver() {
        for name in SWEEP_NAMES {
            assert!(sweep_spec(name, 42).is_some(), "{name} must resolve");
        }
        let mut unique = SWEEP_NAMES.to_vec();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), SWEEP_NAMES.len(), "no duplicate sweep names");
        for bogus in ["", "Default", "chaos ", "adversary", "all"] {
            assert!(sweep_spec(bogus, 42).is_none(), "{bogus:?} must be refused");
        }
    }
}
