//! Measurement applications — the tools the paper's evaluation runs on
//! its hosts: `ping` (Figure 9), a `ttcp`-style blaster (Figure 10 and
//! the frame-rate table), a TFTP uploader (the switchlet delivery path),
//! the Section 7.5 agility probe, and a raw-frame workload generator.

// Every app's `new` deliberately returns the [`App`] dispatch enum, not
// `Self`: hosts take `Vec<App>`, and the wrapper is the only public handle.
#![allow(clippy::new_ret_no_self)]

use std::net::Ipv4Addr;

use ether::{EtherType, Frame, FrameBuilder, Llc, MacAddr};
use netsim::{Ctx, PortId, SimDuration, SimTime};
use netstack::ipv4::Protocol;
use netstack::tcplite::{
    ReceiverConfig, RecvAction, Segment, SenderConfig, TcpReceiver, TcpSender,
};
use netstack::{Echo, EchoKind, FailureClass, SenderStep, TftpSender, UdpDatagram};

use crate::host::{app_token, HostCore};

/// A host application.
pub enum App {
    /// ICMP echo latency measurement.
    Ping(PingApp),
    /// ttcp transmitter.
    TtcpSend(TtcpSendApp),
    /// ttcp receiver.
    TtcpRecv(TtcpRecvApp),
    /// TFTP switchlet uploader.
    Upload(UploadApp),
    /// Section 7.5 agility probe.
    Probe(ProbeApp),
    /// Raw frame generator (workload for learning/flooding experiments).
    Blast(BlastApp),
    /// Adversarial: learning-table exhaustion via randomized source MACs.
    MacFlood(MacFloodApp),
    /// Adversarial: broadcast ARP storm for nonexistent addresses.
    ArpStorm(ArpStormApp),
    /// Adversarial: forged superior BPDUs claiming the spanning-tree root.
    RogueBpdu(RogueBpduApp),
    /// Any app, started only after a configured delay (scenario
    /// schedules build workload batteries out of these).
    Delayed(DelayedApp),
}

impl App {
    /// Wrap `app` so its `on_start` runs `after` the host comes up.
    ///
    /// The wrapper is transparent for traffic: receive-side callbacks
    /// (`on_ip`, raw taps, echo replies) are forwarded immediately, so a
    /// delayed receiver still answers from time zero; only the active
    /// start (first send, first timer train) waits. Wrappers nest.
    pub fn delayed(after: SimDuration, app: App) -> App {
        App::Delayed(DelayedApp {
            after,
            inner: Box::new(app),
            started: false,
        })
    }

    /// The app behind any [`App::delayed`] wrappers (for results
    /// inspection after a run).
    pub fn unwrapped(&self) -> &App {
        match self {
            App::Delayed(d) => d.inner.unwrapped(),
            other => other,
        }
    }

    pub(crate) fn on_start(&mut self, core: &mut HostCore, ctx: &mut Ctx<'_>, idx: usize) {
        match self {
            App::Ping(a) => a.on_start(core, ctx, idx),
            App::TtcpSend(a) => a.on_start(core, ctx, idx),
            App::Upload(a) => a.on_start(core, ctx, idx),
            App::Probe(a) => a.on_start(core, ctx, idx),
            App::Blast(a) => a.on_start(core, ctx, idx),
            App::MacFlood(a) => a.on_start(core, ctx, idx),
            App::ArpStorm(a) => a.on_start(core, ctx, idx),
            App::RogueBpdu(a) => a.on_start(core, ctx, idx),
            App::TtcpRecv(_) => {}
            App::Delayed(a) => a.on_start(core, ctx, idx),
        }
    }

    pub(crate) fn on_timer(
        &mut self,
        core: &mut HostCore,
        ctx: &mut Ctx<'_>,
        idx: usize,
        user: u32,
    ) {
        match self {
            App::Ping(a) => a.on_timer(core, ctx, idx, user),
            App::TtcpSend(a) => a.on_timer(core, ctx, idx, user),
            App::TtcpRecv(a) => a.on_timer(core, ctx, idx, user),
            App::Upload(a) => a.on_timer(core, ctx, idx, user),
            App::Probe(a) => a.on_timer(core, ctx, idx, user),
            App::Blast(a) => a.on_timer(core, ctx, idx, user),
            App::MacFlood(a) => a.on_timer(core, ctx, idx, user),
            App::ArpStorm(a) => a.on_timer(core, ctx, idx, user),
            App::RogueBpdu(a) => a.on_timer(core, ctx, idx, user),
            App::Delayed(a) => a.on_timer(core, ctx, idx, user),
        }
    }

    #[allow(clippy::too_many_arguments)]
    pub(crate) fn on_ip(
        &mut self,
        core: &mut HostCore,
        ctx: &mut Ctx<'_>,
        idx: usize,
        port: PortId,
        src: Ipv4Addr,
        dst: Ipv4Addr,
        proto: Protocol,
        payload: &[u8],
    ) {
        match self {
            App::TtcpSend(a) => a.on_ip(core, ctx, idx, port, src, dst, proto, payload),
            App::TtcpRecv(a) => a.on_ip(core, ctx, idx, port, src, dst, proto, payload),
            App::Upload(a) => a.on_ip(core, ctx, idx, port, src, dst, proto, payload),
            App::Delayed(a) => a
                .inner
                .on_ip(core, ctx, idx, port, src, dst, proto, payload),
            _ => {}
        }
    }

    pub(crate) fn on_echo_reply(
        &mut self,
        core: &mut HostCore,
        ctx: &mut Ctx<'_>,
        idx: usize,
        ident: u16,
        seq: u16,
    ) {
        match self {
            App::Ping(a) => a.on_echo_reply(core, ctx, idx, ident, seq),
            App::Delayed(a) => a.inner.on_echo_reply(core, ctx, idx, ident, seq),
            _ => {}
        }
    }

    /// Does this app (or its wrapped inner app) observe raw frames?
    /// Hosts skip the per-frame raw-tap fan-out entirely when no app
    /// does.
    pub(crate) fn wants_raw(&self) -> bool {
        match self {
            App::Probe(_) => true,
            App::Delayed(a) => a.inner.wants_raw(),
            _ => false,
        }
    }

    pub(crate) fn on_raw(
        &mut self,
        core: &mut HostCore,
        ctx: &mut Ctx<'_>,
        idx: usize,
        port: PortId,
        frame: &Frame<'_>,
    ) {
        match self {
            App::Probe(a) => a.on_raw(core, ctx, idx, port, frame),
            App::Delayed(a) => a.inner.on_raw(core, ctx, idx, port, frame),
            _ => {}
        }
    }

    /// Does this app (or its wrapped inner app) react to transmit
    /// completions? Hosts skip the per-frame tx-done fan-out when none
    /// does.
    pub(crate) fn wants_tx_done(&self) -> bool {
        match self {
            App::TtcpSend(_) => true,
            App::Delayed(a) => a.inner.wants_tx_done(),
            _ => false,
        }
    }

    pub(crate) fn on_tx_done(&mut self, core: &mut HostCore, ctx: &mut Ctx<'_>, idx: usize) {
        match self {
            App::TtcpSend(a) => a.pump_and_write(core, ctx, idx),
            App::Delayed(a) => a.on_tx_done(core, ctx, idx),
            _ => {}
        }
    }
}

// ------------------------------------------------------------------ ping

const PING_SEND: u32 = 1;

/// `ping`: an ICMP ECHO train with RTT statistics.
pub struct PingApp {
    /// Port to ping from.
    pub port: PortId,
    /// Target address.
    pub dst: Ipv4Addr,
    /// Echo requests to send.
    pub count: u32,
    /// ICMP data bytes per request (the Figure 9 "packet size").
    pub payload_len: usize,
    /// Inter-request interval.
    pub interval: SimDuration,
    /// Session identifier.
    pub ident: u16,
    next_seq: u16,
    sent_at: netsim::FastMap<u16, SimTime>,
    /// Measured round-trip times.
    pub rtts: Vec<SimDuration>,
    /// Requests sent.
    pub sent: u32,
    /// Replies received.
    pub received: u32,
    /// When the last reply arrived.
    pub done_at: Option<SimTime>,
    /// The filler payload, built once.
    filler: Vec<u8>,
    /// The filler's checksum contribution, computed once alongside it.
    filler_sum: netstack::checksum::Checksum,
    /// Reusable ICMP build buffer.
    icmp_scratch: Vec<u8>,
}

impl PingApp {
    /// Configure a ping train.
    pub fn new(
        port: PortId,
        dst: Ipv4Addr,
        count: u32,
        payload_len: usize,
        interval: SimDuration,
        ident: u16,
    ) -> App {
        App::Ping(PingApp {
            port,
            dst,
            count,
            payload_len,
            interval,
            ident,
            next_seq: 0,
            sent_at: netsim::FastMap::default(),
            rtts: Vec::new(),
            sent: 0,
            received: 0,
            done_at: None,
            filler: Vec::new(),
            filler_sum: netstack::checksum::Checksum::new(),
            icmp_scratch: Vec::new(),
        })
    }

    /// Average RTT over received replies.
    pub fn avg_rtt(&self) -> Option<SimDuration> {
        if self.rtts.is_empty() {
            return None;
        }
        let total: u64 = self.rtts.iter().map(|d| d.as_ns()).sum();
        Some(SimDuration::from_ns(total / self.rtts.len() as u64))
    }

    fn send_one(&mut self, core: &mut HostCore, ctx: &mut Ctx<'_>) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.sent += 1;
        self.sent_at.insert(seq, ctx.now());
        // Filler (and its checksum contribution) built once; the ICMP
        // message is assembled straight into the wire frame buffer when
        // it fits one MTU (the common case) — no per-request scratch
        // copies and no per-request payload checksum pass. Oversize pings
        // take the fragmenting path.
        if self.filler.len() != self.payload_len {
            self.filler = vec![0xA5u8; self.payload_len];
            let mut sum = netstack::checksum::Checksum::new();
            sum.add(&self.filler);
            self.filler_sum = sum;
        }
        let icmp_len = netstack::icmp::HEADER_LEN + self.payload_len;
        if netstack::ipv4::HEADER_LEN + icmp_len <= 1500 {
            let (ident, filler, sum) = (self.ident, &self.filler, self.filler_sum);
            core.send_ip_built(ctx, self.port, self.dst, Protocol::ICMP, icmp_len, |buf| {
                Echo::emit_into_presummed(buf, EchoKind::Request, ident, seq, filler, sum);
            });
        } else {
            self.icmp_scratch.clear();
            Echo::emit_into(
                &mut self.icmp_scratch,
                EchoKind::Request,
                self.ident,
                seq,
                &self.filler,
            );
            core.send_ip_fragmenting(ctx, self.port, self.dst, Protocol::ICMP, &self.icmp_scratch);
        }
    }

    fn on_start(&mut self, core: &mut HostCore, ctx: &mut Ctx<'_>, idx: usize) {
        ctx.probe_mark("ping.start");
        self.send_one(core, ctx);
        if self.sent < self.count {
            ctx.schedule(self.interval, app_token(idx, PING_SEND));
        }
    }

    fn on_timer(&mut self, core: &mut HostCore, ctx: &mut Ctx<'_>, idx: usize, user: u32) {
        if user == PING_SEND && self.sent < self.count {
            self.send_one(core, ctx);
            if self.sent < self.count {
                ctx.schedule(self.interval, app_token(idx, PING_SEND));
            }
        }
    }

    fn on_echo_reply(
        &mut self,
        _core: &mut HostCore,
        ctx: &mut Ctx<'_>,
        _idx: usize,
        ident: u16,
        seq: u16,
    ) {
        if ident != self.ident {
            return;
        }
        if let Some(sent) = self.sent_at.remove(&seq) {
            self.rtts.push(ctx.now().saturating_since(sent));
            self.received += 1;
            if self.received == self.count {
                self.done_at = Some(ctx.now());
                ctx.probe_mark("ping.done");
            }
        }
    }
}

// ------------------------------------------------------------------ ttcp

const TTCP_WRITE: u32 = 1;
const TTCP_RTO: u32 = 2;
const TTCP_DELACK: u32 = 3;

/// RTO timer tokens carry an epoch in their upper bits (`TTCP_RTO |
/// epoch << 8`): when a closer deadline supersedes an in-flight timer,
/// the epoch advances and the stale timer is recognized and dropped on
/// arrival instead of spawning a duplicate self-renewing chain.
const TTCP_USER_MASK: u32 = 0xFF;

/// The ttcp transmitter: `total_bytes` in `write_size` chunks over
/// TcpLite.
pub struct TtcpSendApp {
    /// Port to send from.
    pub port: PortId,
    /// Receiver address.
    pub dst: Ipv4Addr,
    /// Our TcpLite port.
    pub src_port: u16,
    /// Receiver's TcpLite port.
    pub dst_port: u16,
    /// Total bytes to move.
    pub total_bytes: u64,
    /// Application write size (the Figure 10 "packet size").
    pub write_size: usize,
    tcp: TcpSender,
    writes_left: u64,
    bytes_left: u64,
    write_pending: bool,
    armed_rto: Option<u64>,
    /// Generation of the live RTO timer (see [`TTCP_USER_MASK`]).
    rto_epoch: u32,
    /// When the first write happened.
    pub started_at: Option<SimTime>,
    /// When the last byte was acknowledged.
    pub done_at: Option<SimTime>,
    /// Data frames emitted.
    pub frames_sent: u64,
}

impl TtcpSendApp {
    /// Configure a transmitter.
    pub fn new(
        port: PortId,
        dst: Ipv4Addr,
        src_port: u16,
        dst_port: u16,
        total_bytes: u64,
        write_size: usize,
        sender_cfg: SenderConfig,
    ) -> App {
        assert!(write_size > 0 && total_bytes > 0);
        App::TtcpSend(TtcpSendApp {
            port,
            dst,
            src_port,
            dst_port,
            total_bytes,
            write_size,
            tcp: TcpSender::new(sender_cfg),
            writes_left: total_bytes.div_ceil(write_size as u64),
            bytes_left: total_bytes,
            write_pending: false,
            armed_rto: None,
            rto_epoch: 0,
            started_at: None,
            done_at: None,
            frames_sent: 0,
        })
    }

    /// Finished?
    pub fn is_done(&self) -> bool {
        self.done_at.is_some()
    }

    /// Measured goodput in bits/second (None until done).
    pub fn throughput_bps(&self) -> Option<f64> {
        let (start, end) = (self.started_at?, self.done_at?);
        let secs = end.saturating_since(start).as_secs_f64();
        if secs <= 0.0 {
            return None;
        }
        Some(self.total_bytes as f64 * 8.0 / secs)
    }

    fn on_start(&mut self, core: &mut HostCore, ctx: &mut Ctx<'_>, idx: usize) {
        self.started_at = Some(ctx.now());
        ctx.probe_mark("ttcp.start");
        self.try_write(core, ctx, idx);
    }

    /// Schedule the next application write (after the write-syscall cost).
    ///
    /// Large writes keep the socket buffer topped up (up to one write
    /// ahead) so the stream stays MSS-aligned, as a real socket does;
    /// sub-MSS writes pace stop-and-wait behind Nagle — each `write()`
    /// happens only once the previous small segment drained and was
    /// acknowledged, which is what pins the paper's small-packet ttcp to
    /// hundreds of frames per second.
    fn try_write(&mut self, core: &HostCore, ctx: &mut Ctx<'_>, idx: usize) {
        if self.write_pending || self.writes_left == 0 {
            return;
        }
        if self.write_size >= self.tcp.mss() {
            if self.tcp.unsent() >= self.write_size as u64 {
                return; // socket buffer full enough
            }
        } else if self.write_size >= self.tcp.nagle_threshold() {
            // Mid-size writes stream one write at a time: segments stay
            // write-sized (the paper's 1024-byte frames on the wire).
            if self.tcp.unsent() > 0 {
                return;
            }
        } else {
            if self.tcp.unsent() > 0 {
                return;
            }
            if self.tcp.in_flight() > 0 {
                return; // Nagle stop-and-wait for small writes
            }
        }
        self.write_pending = true;
        let cost = core.cfg.cost.write_time().max(SimDuration::from_ns(1));
        ctx.schedule(cost, app_token(idx, TTCP_WRITE));
    }

    fn pump(&mut self, core: &mut HostCore, ctx: &mut Ctx<'_>, idx: usize) {
        let now_ns = ctx.now().as_ns();
        let src_ip = core.cfg.ips[self.port.0];
        let (dst, src_port, dst_port) = (self.dst, self.src_port, self.dst_port);
        // Hot loop: the segment decision carries no payload; the header
        // and pattern bytes are generated straight into the wire frame
        // buffer — one pass, no intermediate segment vector.
        while let Some(meta) = self.tcp.poll_meta(now_ns) {
            core.send_ip_built(
                ctx,
                self.port,
                dst,
                Protocol::TCPLITE,
                netstack::tcplite::HEADER_LEN + meta.len,
                |buf| {
                    netstack::tcplite::emit_pattern_segment(
                        buf, src_ip, dst, src_port, dst_port, meta.seq, meta.len,
                    );
                },
            );
            self.frames_sent += 1;
        }
        self.arm_rto(ctx, idx);
    }

    fn pump_and_write(&mut self, core: &mut HostCore, ctx: &mut Ctx<'_>, idx: usize) {
        self.pump(core, ctx, idx);
        self.try_write(core, ctx, idx);
    }

    /// Lazy retransmission-timer arming: in the common case (every ACK
    /// pushes the deadline *out*) the one in-flight timer is left alone
    /// and simply re-arms itself when it fires early — scheduling a fresh
    /// timer per ACK would park hundreds of stale events in the
    /// simulator's queue and deepen every heap operation on the hot path.
    /// The deadline can also move *earlier* (an ACK after a timeout
    /// resets the backed-off RTO to its initial value), in which case a
    /// closer timer is scheduled so recovery never waits out a stale
    /// backed-off deadline; the superseded timer fires later as a cheap
    /// no-op.
    fn arm_rto(&mut self, ctx: &mut Ctx<'_>, idx: usize) {
        if let Some(deadline) = self.tcp.next_timeout() {
            let need = match self.armed_rto {
                None => true,
                Some(armed) => deadline < armed,
            };
            if need {
                self.armed_rto = Some(deadline);
                self.rto_epoch = self.rto_epoch.wrapping_add(1) & 0x00FF_FFFF;
                let now = ctx.now().as_ns();
                let delay = SimDuration::from_ns(deadline.saturating_sub(now).max(1));
                ctx.schedule(delay, app_token(idx, TTCP_RTO | (self.rto_epoch << 8)));
            }
        }
    }

    fn on_timer(&mut self, core: &mut HostCore, ctx: &mut Ctx<'_>, idx: usize, user: u32) {
        match user & TTCP_USER_MASK {
            TTCP_WRITE => {
                // The write-syscall cost was charged by the schedule delay.
                self.write_pending = false;
                let chunk = (self.write_size as u64).min(self.bytes_left);
                self.bytes_left -= chunk;
                self.writes_left -= 1;
                self.tcp.write(chunk);
                self.pump(core, ctx, idx);
                self.try_write(core, ctx, idx);
            }
            TTCP_RTO => {
                if (user >> 8) != self.rto_epoch {
                    // A superseded timer (a closer deadline was armed
                    // after it): ignore; the live timer carries the
                    // current epoch.
                    return;
                }
                // The live timer just fired; whatever happens next needs
                // a fresh arm (pump ends with arm_rto).
                self.armed_rto = None;
                let now_ns = ctx.now().as_ns();
                if let Some(deadline) = self.tcp.next_timeout() {
                    if deadline <= now_ns {
                        self.tcp.on_timeout(now_ns);
                        self.pump(core, ctx, idx);
                    } else {
                        // Deadline moved while the timer was in flight
                        // (ACKs arrived): re-arm at the current deadline.
                        self.arm_rto(ctx, idx);
                    }
                }
            }
            _ => {}
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn on_ip(
        &mut self,
        core: &mut HostCore,
        ctx: &mut Ctx<'_>,
        idx: usize,
        _port: PortId,
        src: Ipv4Addr,
        dst: Ipv4Addr,
        proto: Protocol,
        payload: &[u8],
    ) {
        if proto != Protocol::TCPLITE || src != self.dst {
            return;
        }
        let Ok(seg) = Segment::parse(payload, src, dst) else {
            return;
        };
        if !seg.is_ack || seg.dst_port != self.src_port {
            return;
        }
        let now_ns = ctx.now().as_ns();
        self.tcp.on_ack(seg.ack, now_ns);
        if self.tcp.all_acked() && self.writes_left == 0 && self.done_at.is_none() {
            self.done_at = Some(ctx.now());
            ctx.bump("ttcp.done", 1);
            ctx.probe_mark("ttcp.done");
            return;
        }
        self.pump(core, ctx, idx);
        self.try_write(core, ctx, idx);
    }
}

/// The ttcp receiver.
pub struct TtcpRecvApp {
    /// Our TcpLite port.
    pub port_num: u16,
    rx: TcpReceiver,
    delack_armed: bool,
    peer: Option<(Ipv4Addr, u16, PortId)>,
    /// First data arrival.
    pub first_at: Option<SimTime>,
    /// Latest data arrival.
    pub last_at: Option<SimTime>,
    /// Gap (ns) between consecutive data-segment arrivals — the raw
    /// samples scenario reports sketch into an inter-arrival jitter
    /// histogram. One entry per accepted segment after the first.
    pub inter_arrival_ns: Vec<u64>,
}

impl TtcpRecvApp {
    /// Configure a receiver.
    pub fn new(port_num: u16, cfg: ReceiverConfig) -> App {
        App::TtcpRecv(TtcpRecvApp {
            port_num,
            rx: TcpReceiver::new(cfg),
            delack_armed: false,
            peer: None,
            first_at: None,
            last_at: None,
            inter_arrival_ns: Vec::new(),
        })
    }

    /// Bytes received in order.
    pub fn bytes_received(&self) -> u64 {
        self.rx.bytes_received
    }

    /// Data segments accepted.
    pub fn segments_received(&self) -> u64 {
        self.rx.segments_received
    }

    fn send_ack(&mut self, core: &mut HostCore, ctx: &mut Ctx<'_>, ack: u32) {
        let Some((peer_ip, peer_port, port)) = self.peer else {
            return;
        };
        let src_ip = core.cfg.ips[port.0];
        let port_num = self.port_num;
        core.send_ip_built(
            ctx,
            port,
            peer_ip,
            Protocol::TCPLITE,
            netstack::tcplite::HEADER_LEN,
            |buf| {
                Segment {
                    src_port: port_num,
                    dst_port: peer_port,
                    seq: 0,
                    ack,
                    is_ack: true,
                    payload: &[],
                }
                .emit_into(buf, src_ip, peer_ip);
            },
        );
    }

    #[allow(clippy::too_many_arguments)]
    fn on_ip(
        &mut self,
        core: &mut HostCore,
        ctx: &mut Ctx<'_>,
        idx: usize,
        port: PortId,
        src: Ipv4Addr,
        dst: Ipv4Addr,
        proto: Protocol,
        payload: &[u8],
    ) {
        if proto != Protocol::TCPLITE {
            return;
        }
        let Ok(seg) = Segment::parse(payload, src, dst) else {
            return;
        };
        if seg.is_ack || seg.dst_port != self.port_num {
            return;
        }
        self.peer = Some((src, seg.src_port, port));
        if self.first_at.is_none() {
            self.first_at = Some(ctx.now());
        }
        if let Some(prev) = self.last_at {
            self.inter_arrival_ns
                .push(ctx.now().saturating_since(prev).as_ns());
        }
        self.last_at = Some(ctx.now());
        let now_ns = ctx.now().as_ns();
        match self.rx.on_segment(seg.seq, seg.payload.len(), now_ns) {
            RecvAction::AckNow(a) => self.send_ack(core, ctx, a),
            RecvAction::AckAt(deadline) => {
                if !self.delack_armed {
                    self.delack_armed = true;
                    let delay = SimDuration::from_ns(deadline.saturating_sub(now_ns).max(1));
                    ctx.schedule(delay, app_token(idx, TTCP_DELACK));
                }
            }
            RecvAction::None => {}
        }
    }

    fn on_timer(&mut self, core: &mut HostCore, ctx: &mut Ctx<'_>, idx: usize, user: u32) {
        if user == TTCP_DELACK {
            self.delack_armed = false;
            let now_ns = ctx.now().as_ns();
            if let Some(ack) = self.rx.on_timer(now_ns) {
                self.send_ack(core, ctx, ack);
            } else if let Some(deadline) = self.rx.ack_deadline() {
                // The deadline moved while the timer was in flight: re-arm
                // or the pending ACK would wait for the sender's RTO.
                self.delack_armed = true;
                let delay = SimDuration::from_ns(deadline.saturating_sub(now_ns).max(1));
                ctx.schedule(delay, app_token(idx, TTCP_DELACK));
            }
        }
    }
}

// ---------------------------------------------------------------- upload

const UPLOAD_RETRY: u32 = 1;

/// Tuning knobs for the upload transport, lifted out of the old magic
/// constants (500 ms poll, 400 ms stall threshold).
///
/// The default reproduces the original fixed-threshold transport
/// bit-for-bit: the RTO never moves (`rtt_gain` 0 disables seeding, the
/// ceiling equals the initial RTO so backoff clamps in place) and the
/// retry budget is effectively unbounded. [`UploadConfig::resilient`] is
/// the adaptive preset the lossy battery runs with.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct UploadConfig {
    /// Poll-timer period: the grid on which stalls are noticed.
    pub poll: SimDuration,
    /// Retransmission threshold before any RTT sample has been taken.
    pub initial_rto: SimDuration,
    /// Floor for the RTT-seeded RTO (ignored while `rtt_gain` is 0).
    pub min_rto: SimDuration,
    /// Ceiling the binary exponential backoff saturates at.
    pub rto_ceiling: SimDuration,
    /// RTO = measured RTT x this gain, clamped to `[min_rto,
    /// rto_ceiling]`, re-seeded on every forward-progress event. 0 turns
    /// seeding off (fixed-threshold legacy behaviour).
    pub rtt_gain: u32,
    /// Budget of recovery actions (retransmissions + session restarts);
    /// once spent, the upload is parked as a classified failure.
    pub max_retries: u32,
    /// Consecutive fruitless retransmissions before the sender drops its
    /// ARP entry for the loader and re-resolves (0 = never, the legacy
    /// behaviour). ARP has no checksum: on a corrupting medium a
    /// bit-flipped reply can poison the cache, and without a refresh
    /// every later retransmission unicasts to a MAC nobody owns.
    pub arp_refresh: u32,
}

impl Default for UploadConfig {
    fn default() -> Self {
        UploadConfig {
            poll: SimDuration::from_ms(500),
            initial_rto: SimDuration::from_ms(400),
            min_rto: SimDuration::from_ms(400),
            rto_ceiling: SimDuration::from_ms(400),
            rtt_gain: 0,
            max_retries: u32::MAX,
            arp_refresh: 0,
        }
    }
}

impl UploadConfig {
    /// The hostile-media preset: RTT-seeded RTO, 8x backoff headroom,
    /// and a finite budget so a dead server fails the upload instead of
    /// livelocking it.
    pub fn resilient() -> Self {
        UploadConfig {
            poll: SimDuration::from_ms(100),
            initial_rto: SimDuration::from_ms(400),
            min_rto: SimDuration::from_ms(200),
            rto_ceiling: SimDuration::from_ms(3_200),
            rtt_gain: 4,
            max_retries: 40,
            arp_refresh: 4,
        }
    }
}

/// Uploads a switchlet image to a bridge's TFTP loader.
pub struct UploadApp {
    /// Port to upload from.
    pub port: PortId,
    /// The bridge's loader address.
    pub dst: Ipv4Addr,
    /// Our UDP port.
    pub src_port: u16,
    /// Transport tuning.
    pub cfg: UploadConfig,
    sender: TftpSender,
    /// Completion time.
    pub done_at: Option<SimTime>,
    /// Terminal failure reason — set only when the upload is parked for
    /// good (budget spent); transient failures restart instead.
    pub failed: Option<String>,
    /// Class of the most recent failure event (terminal or recovered).
    pub failure: Option<FailureClass>,
    last_tx: SimTime,
    /// Current retransmission threshold (adaptive when configured).
    rto: SimDuration,
    /// Retransmissions performed.
    pub retries: u32,
    /// Fresh-WRQ session restarts after classified server failures.
    pub restarts: u32,
    /// Backoff doublings clamped at [`UploadConfig::rto_ceiling`].
    pub rto_ceiling_hits: u32,
    /// Retransmissions since the last forward-progress event — the
    /// [`UploadConfig::arp_refresh`] trigger.
    retries_since_progress: u32,
    /// Gap (ns) between consecutive forward-progress events (server
    /// responses that advanced the transfer, including completion) —
    /// the delivery-timeline samples scenario reports sketch. Stalls
    /// bridged by retries show up as large gaps.
    pub progress_gap_ns: Vec<u64>,
    last_progress: Option<SimTime>,
}

impl UploadApp {
    /// Configure an upload with the legacy fixed-threshold transport.
    pub fn new(
        port: PortId,
        dst: Ipv4Addr,
        src_port: u16,
        filename: impl Into<String>,
        image: Vec<u8>,
    ) -> App {
        Self::with_config(
            port,
            dst,
            src_port,
            filename,
            image,
            UploadConfig::default(),
        )
    }

    /// Configure an upload with explicit transport tuning.
    pub fn with_config(
        port: PortId,
        dst: Ipv4Addr,
        src_port: u16,
        filename: impl Into<String>,
        image: Vec<u8>,
        cfg: UploadConfig,
    ) -> App {
        App::Upload(UploadApp {
            port,
            dst,
            src_port,
            cfg,
            sender: TftpSender::new(filename, image),
            done_at: None,
            failed: None,
            failure: None,
            last_tx: SimTime::ZERO,
            rto: cfg.initial_rto,
            retries: 0,
            restarts: 0,
            rto_ceiling_hits: 0,
            retries_since_progress: 0,
            progress_gap_ns: Vec::new(),
            last_progress: None,
        })
    }

    /// True once the final block is acknowledged.
    pub fn is_done(&self) -> bool {
        self.done_at.is_some()
    }

    fn send_udp(&mut self, core: &mut HostCore, ctx: &mut Ctx<'_>, payload: &[u8]) {
        let wire = netstack::udp::emit(
            core.cfg.ips[self.port.0],
            self.src_port,
            self.dst,
            crate::TFTP_PORT,
            payload,
        );
        core.send_ip(ctx, self.port, self.dst, Protocol::UDP, &wire);
        self.last_tx = ctx.now();
    }

    fn on_start(&mut self, core: &mut HostCore, ctx: &mut Ctx<'_>, idx: usize) {
        ctx.probe_mark("upload.start");
        let wrq = self.sender.start();
        self.send_udp(core, ctx, &wrq);
        self.last_progress = Some(ctx.now());
        ctx.schedule(self.cfg.poll, app_token(idx, UPLOAD_RETRY));
    }

    #[allow(clippy::too_many_arguments)]
    fn on_ip(
        &mut self,
        core: &mut HostCore,
        ctx: &mut Ctx<'_>,
        _idx: usize,
        _port: PortId,
        src: Ipv4Addr,
        dst: Ipv4Addr,
        proto: Protocol,
        payload: &[u8],
    ) {
        if proto != Protocol::UDP || src != self.dst {
            return;
        }
        let Ok(udp) = UdpDatagram::parse(payload, src, dst) else {
            return;
        };
        if udp.dst_port() != self.src_port {
            return;
        }
        let rtt = ctx.now().saturating_since(self.last_tx);
        match self.sender.on_packet(udp.payload()) {
            SenderStep::Send(next) => {
                self.record_progress(ctx.now());
                self.reseed_rto(rtt);
                self.send_udp(core, ctx, &next);
            }
            SenderStep::Done => {
                self.record_progress(ctx.now());
                self.done_at = Some(ctx.now());
                ctx.probe_mark("upload.done");
            }
            SenderStep::Failed(class, msg) => {
                ctx.probe_mark("upload.fail");
                self.failure = Some(class);
                if self.budget_used() >= self.cfg.max_retries {
                    self.failed = Some(msg);
                } else {
                    // A refused or lost session (server crash,
                    // out-of-sequence, integrity reject) is recoverable:
                    // RFC 1350 has no mid-transfer resume, so rewind to a
                    // fresh WRQ and re-send the whole image, charging the
                    // restart against the retry budget.
                    self.restarts += 1;
                    self.sender.restart();
                    self.rto = self.cfg.initial_rto;
                    let wrq = self.sender.start();
                    self.send_udp(core, ctx, &wrq);
                }
            }
            SenderStep::Ignore => {}
        }
    }

    fn record_progress(&mut self, now: SimTime) {
        if let Some(prev) = self.last_progress {
            self.progress_gap_ns
                .push(now.saturating_since(prev).as_ns());
        }
        self.last_progress = Some(now);
        self.retries_since_progress = 0;
    }

    /// Recovery actions spent against [`UploadConfig::max_retries`].
    pub fn budget_used(&self) -> u32 {
        self.retries.saturating_add(self.restarts)
    }

    fn reseed_rto(&mut self, rtt: SimDuration) {
        if self.cfg.rtt_gain == 0 {
            return;
        }
        let ns = rtt
            .as_ns()
            .saturating_mul(self.cfg.rtt_gain as u64)
            .clamp(self.cfg.min_rto.as_ns(), self.cfg.rto_ceiling.as_ns());
        self.rto = SimDuration::from_ns(ns);
    }

    fn on_timer(&mut self, core: &mut HostCore, ctx: &mut Ctx<'_>, idx: usize, user: u32) {
        if user != UPLOAD_RETRY || self.done_at.is_some() || self.failed.is_some() {
            return;
        }
        if ctx.now().saturating_since(self.last_tx) >= self.rto {
            if let Some(current) = self.sender.current() {
                if self.budget_used() >= self.cfg.max_retries {
                    // Budget spent with the server silent: classified
                    // timeout, upload parked (the poll timer is not
                    // re-armed, so a dead server cannot livelock us).
                    ctx.probe_mark("upload.fail");
                    self.failure = Some(FailureClass::Timeout);
                    self.failed = Some(format!(
                        "timeout: retry budget ({}) exhausted",
                        self.cfg.max_retries
                    ));
                    return;
                }
                self.retries += 1;
                self.retries_since_progress += 1;
                // A run of fruitless retransmissions may mean the ARP
                // cache is poisoned (a corrupted, checksum-less reply):
                // periodically re-resolve so the next send re-ARPs
                // instead of unicasting to a MAC nobody owns.
                if self.cfg.arp_refresh > 0
                    && self
                        .retries_since_progress
                        .is_multiple_of(self.cfg.arp_refresh)
                    && core.invalidate_arp(self.dst)
                {
                    ctx.probe_mark("upload.rearp");
                }
                // Binary exponential backoff, saturating at the ceiling.
                let doubled = self.rto.as_ns().saturating_mul(2);
                if doubled >= self.cfg.rto_ceiling.as_ns() {
                    if doubled > self.cfg.rto_ceiling.as_ns() {
                        self.rto_ceiling_hits += 1;
                    }
                    self.rto = self.cfg.rto_ceiling;
                } else {
                    self.rto = SimDuration::from_ns(doubled);
                }
                self.send_udp(core, ctx, &current);
            }
        }
        ctx.schedule(self.cfg.poll, app_token(idx, UPLOAD_RETRY));
    }
}

// ----------------------------------------------------------------- probe

const PROBE_PING: u32 = 1;
const PROBE_START: u32 = 2;

/// The Section 7.5 agility probe: a two-NIC host that injects an 802.1D
/// BPDU on `eth0`, waits to see one on `eth1` (all bridges in the path
/// have switched), and sends a prebuilt ICMP ECHO once per second on
/// `eth0` until it sees it arrive on `eth1`.
pub struct ProbeApp {
    /// ICMP identifier for the prebuilt pings.
    pub ident: u16,
    /// Wait this long before injecting (lets the old protocol converge).
    pub start_delay: SimDuration,
    seq: u16,
    /// When the triggering BPDU was sent.
    pub sent_bpdu_at: Option<SimTime>,
    /// When an IEEE BPDU first appeared on eth1.
    pub ieee_seen_at: Option<SimTime>,
    /// When the first probe ping arrived on eth1.
    pub ping_seen_at: Option<SimTime>,
    /// Pings sent.
    pub pings_sent: u32,
}

impl ProbeApp {
    /// Configure a probe that fires immediately.
    pub fn new(ident: u16) -> App {
        Self::new_delayed(ident, SimDuration::ZERO)
    }

    /// Configure a probe that waits `start_delay` before injecting the
    /// triggering BPDU (so the old protocol can converge first).
    pub fn new_delayed(ident: u16, start_delay: SimDuration) -> App {
        App::Probe(ProbeApp {
            ident,
            start_delay,
            seq: 0,
            sent_bpdu_at: None,
            ieee_seen_at: None,
            ping_seen_at: None,
            pings_sent: 0,
        })
    }

    /// The paper's "start to IEEE" interval.
    pub fn to_ieee(&self) -> Option<SimDuration> {
        Some(self.ieee_seen_at?.saturating_since(self.sent_bpdu_at?))
    }

    /// The paper's "start to received ping" interval.
    pub fn to_ping(&self) -> Option<SimDuration> {
        Some(self.ping_seen_at?.saturating_since(self.sent_bpdu_at?))
    }

    fn on_start(&mut self, core: &mut HostCore, ctx: &mut Ctx<'_>, idx: usize) {
        assert!(
            core.cfg.macs.len() >= 2,
            "the agility probe needs two NICs (eth0, eth1)"
        );
        assert!(core.cfg.promiscuous, "the probe reads raw frames");
        if self.start_delay.is_zero() {
            self.fire(core, ctx, idx);
        } else {
            ctx.schedule(self.start_delay, app_token(idx, PROBE_START));
        }
    }

    fn fire(&mut self, core: &mut HostCore, ctx: &mut Ctx<'_>, idx: usize) {
        // The triggering BPDU: a valid 802.1D configuration message from
        // a never-winning "bridge" (priority 0xFFFF).
        use active_bridge_types::*;
        let me = BridgeId::new(0xFFFF, core.cfg.macs[0]);
        let config = ConfigBpdu {
            root: me,
            root_cost: 0,
            bridge: me,
            port: 1,
            message_age: 0,
            max_age: 20,
            hello_time: 2,
            forward_delay: 15,
            tc: false,
            tca: false,
        };
        let payload = ieee_emit(&Bpdu::Config(config));
        let frame = FrameBuilder::new_llc(MacAddr::ALL_BRIDGES, core.cfg.macs[0])
            .payload(&Llc::BPDU.wrap(&payload))
            .build();
        core.send_raw(ctx, PortId(0), frame);
        self.sent_bpdu_at = Some(ctx.now());
        ctx.schedule(SimDuration::from_secs(1), app_token(idx, PROBE_PING));
    }

    fn on_timer(&mut self, core: &mut HostCore, ctx: &mut Ctx<'_>, idx: usize, user: u32) {
        if user == PROBE_START {
            self.fire(core, ctx, idx);
            return;
        }
        if user != PROBE_PING || self.ping_seen_at.is_some() {
            return;
        }
        // Prebuilt ICMP ECHO addressed to our own eth1, sent raw on eth0:
        // unknown destination, so bridges flood it — once they forward.
        let icmp = Echo::emit(EchoKind::Request, self.ident, self.seq, b"agility-probe");
        self.seq += 1;
        let ip = netstack::ipv4::emit(
            core.cfg.ips[0],
            core.cfg.ips[1],
            Protocol::ICMP,
            self.seq,
            64,
            &icmp,
            1500,
        )
        .expect("probe ping fits MTU");
        let frame = FrameBuilder::new(core.cfg.macs[1], core.cfg.macs[0], EtherType::IPV4)
            .payload(&ip)
            .build();
        core.send_raw(ctx, PortId(0), frame);
        self.pings_sent += 1;
        ctx.schedule(SimDuration::from_secs(1), app_token(idx, PROBE_PING));
    }

    fn on_raw(
        &mut self,
        _core: &mut HostCore,
        ctx: &mut Ctx<'_>,
        _idx: usize,
        port: PortId,
        frame: &Frame<'_>,
    ) {
        if port != PortId(1) {
            return;
        }
        if frame.dst() == MacAddr::ALL_BRIDGES && self.ieee_seen_at.is_none() {
            // An IEEE BPDU on eth1: every bridge in the path switched.
            if let Some((llc, rest)) = Llc::parse(frame.payload()) {
                if llc == Llc::BPDU && active_bridge_types::ieee_parse(rest).is_some() {
                    self.ieee_seen_at = Some(ctx.now());
                }
            }
            return;
        }
        if frame.ethertype() == EtherType::IPV4 && self.ping_seen_at.is_none() {
            if let Ok(ip) = netstack::ipv4::Packet::parse(frame.payload()) {
                if ip.protocol() == Protocol::ICMP {
                    if let Ok(echo) = Echo::parse(ip.payload()) {
                        if echo.kind == EchoKind::Request && echo.ident == self.ident {
                            self.ping_seen_at = Some(ctx.now());
                        }
                    }
                }
            }
        }
    }
}

/// Minimal local copies of the 802.1D BPDU shapes the probe needs.
///
/// `hostsim` deliberately does not depend on the `active-bridge` crate
/// (hosts are substrate, the bridge is the system under test), so the
/// probe carries its own copy of the IEEE BPDU codec — byte-compatible
/// with `active_bridge::switchlets::stp::bpdu::ieee` and cross-checked by
/// an integration test at the workspace root.
pub mod active_bridge_types {
    use ether::MacAddr;

    /// Bridge identifier (priority, MAC).
    #[derive(Copy, Clone, PartialEq, Eq, Debug)]
    pub struct BridgeId {
        /// Priority.
        pub priority: u16,
        /// MAC.
        pub mac: MacAddr,
    }

    impl BridgeId {
        /// Construct.
        pub fn new(priority: u16, mac: MacAddr) -> BridgeId {
            BridgeId { priority, mac }
        }
    }

    /// Configuration BPDU fields.
    #[derive(Copy, Clone, PartialEq, Eq, Debug)]
    pub struct ConfigBpdu {
        /// Claimed root.
        pub root: BridgeId,
        /// Cost to root.
        pub root_cost: u32,
        /// Transmitting bridge.
        pub bridge: BridgeId,
        /// Transmitting port.
        pub port: u16,
        /// Age (s).
        pub message_age: u16,
        /// Max age (s).
        pub max_age: u16,
        /// Hello (s).
        pub hello_time: u16,
        /// Forward delay (s).
        pub forward_delay: u16,
        /// Topology change.
        pub tc: bool,
        /// Topology change ack.
        pub tca: bool,
    }

    /// A BPDU.
    #[derive(Copy, Clone, PartialEq, Eq, Debug)]
    pub enum Bpdu {
        /// Configuration.
        Config(ConfigBpdu),
        /// Topology-change notification.
        Tcn,
    }

    /// Encode an IEEE 802.1D BPDU.
    pub fn ieee_emit(bpdu: &Bpdu) -> Vec<u8> {
        match bpdu {
            Bpdu::Tcn => vec![0, 0, 0, 0x80],
            Bpdu::Config(c) => {
                let mut out = Vec::with_capacity(35);
                out.extend_from_slice(&[0, 0, 0, 0]);
                let mut flags = 0u8;
                if c.tc {
                    flags |= 0x01;
                }
                if c.tca {
                    flags |= 0x80;
                }
                out.push(flags);
                out.extend_from_slice(&c.root.priority.to_be_bytes());
                out.extend_from_slice(&c.root.mac.octets());
                out.extend_from_slice(&c.root_cost.to_be_bytes());
                out.extend_from_slice(&c.bridge.priority.to_be_bytes());
                out.extend_from_slice(&c.bridge.mac.octets());
                out.extend_from_slice(&c.port.to_be_bytes());
                for t in [c.message_age, c.max_age, c.hello_time, c.forward_delay] {
                    out.extend_from_slice(&(t * 256).to_be_bytes());
                }
                out
            }
        }
    }

    /// Minimal recognizer for IEEE config BPDUs.
    pub fn ieee_parse(buf: &[u8]) -> Option<()> {
        if buf.len() >= 4 && buf[0] == 0 && buf[1] == 0 && buf[2] == 0 && buf[3] == 0 {
            Some(())
        } else {
            None
        }
    }
}

// ----------------------------------------------------------------- blast

const BLAST_TICK: u32 = 1;

/// A raw-frame generator for flooding/learning experiments.
pub struct BlastApp {
    /// Port to send from.
    pub port: PortId,
    /// Destination address.
    pub dst_mac: MacAddr,
    /// Frame payload size.
    pub size: usize,
    /// Frames to send.
    pub count: u64,
    /// Inter-frame interval.
    pub interval: SimDuration,
    /// Frames sent so far.
    pub sent: u64,
    /// The frame, built once and then shared (every send is a refcount
    /// bump), keyed by the `(dst_mac, src_mac, size)` it was built from
    /// so edits to the public configuration fields (including `port`,
    /// which selects the source MAC) rebuild it.
    frame: Option<(MacAddr, MacAddr, usize, netsim::FrameBuf)>,
}

impl BlastApp {
    /// Configure a blaster.
    pub fn new(
        port: PortId,
        dst_mac: MacAddr,
        size: usize,
        count: u64,
        interval: SimDuration,
    ) -> App {
        App::Blast(BlastApp {
            port,
            dst_mac,
            size,
            count,
            interval,
            sent: 0,
            frame: None,
        })
    }

    fn send_one(&mut self, core: &mut HostCore, ctx: &mut Ctx<'_>) {
        let src_mac = core.cfg.macs[self.port.0];
        let frame = match &self.frame {
            Some((dst, src, size, f))
                if *dst == self.dst_mac && *src == src_mac && *size == self.size =>
            {
                f.clone()
            }
            _ => {
                let payload = vec![0x42u8; self.size];
                let built: netsim::FrameBuf =
                    FrameBuilder::new(self.dst_mac, src_mac, EtherType::EXPERIMENTAL)
                        .payload(&payload)
                        .build()
                        .into();
                self.frame = Some((self.dst_mac, src_mac, self.size, built.clone()));
                built
            }
        };
        core.send_raw(ctx, self.port, frame);
        self.sent += 1;
    }

    fn on_start(&mut self, core: &mut HostCore, ctx: &mut Ctx<'_>, idx: usize) {
        if self.count > 0 {
            ctx.probe_mark("blast.start");
            self.send_one(core, ctx);
            if self.sent < self.count {
                ctx.schedule(self.interval, app_token(idx, BLAST_TICK));
            }
        }
    }

    fn on_timer(&mut self, core: &mut HostCore, ctx: &mut Ctx<'_>, idx: usize, user: u32) {
        if user == BLAST_TICK && self.sent < self.count {
            self.send_one(core, ctx);
            if self.sent < self.count {
                ctx.schedule(self.interval, app_token(idx, BLAST_TICK));
            }
        }
    }
}

// --------------------------------------------------------------- attacks
//
// Adversarial workloads for the defense-plane battery. Each attacker
// draws from its own `Xoshiro` stream seeded by the scenario (never the
// world RNG), so an attack is a pure function of its seed and the
// defended/undefended arms replay the identical offense.

const ATTACK_TICK: u32 = 1;

/// A MAC-flood attacker: frames with randomized (locally-administered,
/// unicast) source addresses toward a fixed never-learned destination —
/// classic CAM-table exhaustion against an unbounded learning table.
pub struct MacFloodApp {
    /// Port to send from.
    pub port: PortId,
    /// Frames to send.
    pub count: u64,
    /// Inter-frame interval.
    pub interval: SimDuration,
    /// Frames sent so far.
    pub sent: u64,
    rng: netsim::Xoshiro,
}

impl MacFloodApp {
    /// Configure a MAC flooder.
    pub fn new(port: PortId, count: u64, interval: SimDuration, seed: u64) -> App {
        App::MacFlood(MacFloodApp {
            port,
            count,
            interval,
            sent: 0,
            rng: netsim::Xoshiro::seed_from_u64(seed),
        })
    }

    fn send_one(&mut self, core: &mut HostCore, ctx: &mut Ctx<'_>) {
        let mut b = self.rng.next_u64().to_be_bytes();
        // Locally administered, unicast: never collides with a real
        // station's globally-unique address, never a group source.
        b[0] = (b[0] | 0x02) & !0x01;
        let src = MacAddr([b[0], b[1], b[2], b[3], b[4], b[5]]);
        // A fixed unicast destination no station owns: every frame is
        // unknown-unicast and floods (the storm class policing catches).
        let dst = MacAddr([0x02, 0xDE, 0xAD, 0xBE, 0xEF, 0x01]);
        let frame = FrameBuilder::new(dst, src, EtherType::EXPERIMENTAL)
            .payload(&[0x5A; 46])
            .build();
        core.send_raw(ctx, self.port, frame);
        self.sent += 1;
    }

    fn on_start(&mut self, core: &mut HostCore, ctx: &mut Ctx<'_>, idx: usize) {
        if self.count > 0 {
            ctx.probe_mark("attack.macflood.start");
            self.send_one(core, ctx);
            if self.sent < self.count {
                ctx.schedule(self.interval, app_token(idx, ATTACK_TICK));
            }
        }
    }

    fn on_timer(&mut self, core: &mut HostCore, ctx: &mut Ctx<'_>, idx: usize, user: u32) {
        if user == ATTACK_TICK && self.sent < self.count {
            self.send_one(core, ctx);
            if self.sent < self.count {
                ctx.schedule(self.interval, app_token(idx, ATTACK_TICK));
            }
        }
    }
}

/// An ARP-storm attacker: broadcast who-has requests for addresses
/// nobody owns, at line rate — every frame floods the whole extended LAN.
pub struct ArpStormApp {
    /// Port to send from.
    pub port: PortId,
    /// Frames to send.
    pub count: u64,
    /// Inter-frame interval.
    pub interval: SimDuration,
    /// Frames sent so far.
    pub sent: u64,
    rng: netsim::Xoshiro,
}

impl ArpStormApp {
    /// Configure an ARP storm.
    pub fn new(port: PortId, count: u64, interval: SimDuration, seed: u64) -> App {
        App::ArpStorm(ArpStormApp {
            port,
            count,
            interval,
            sent: 0,
            rng: netsim::Xoshiro::seed_from_u64(seed),
        })
    }

    fn send_one(&mut self, core: &mut HostCore, ctx: &mut Ctx<'_>) {
        let src_mac = core.cfg.macs[self.port.0];
        let spa = core.cfg.ips[self.port.0];
        // Resolve a different nonexistent address each time (a dedicated
        // dark /16 no scenario host lives in), so no cache ever answers.
        let r = self.rng.next_u32();
        let tpa = Ipv4Addr::new(10, 250, (r >> 8) as u8, r as u8);
        let arp = netstack::ArpPacket::request(src_mac, spa, tpa).emit();
        let frame = FrameBuilder::new(MacAddr::BROADCAST, src_mac, EtherType::ARP)
            .payload(&arp)
            .build();
        core.send_raw(ctx, self.port, frame);
        self.sent += 1;
    }

    fn on_start(&mut self, core: &mut HostCore, ctx: &mut Ctx<'_>, idx: usize) {
        if self.count > 0 {
            ctx.probe_mark("attack.arpstorm.start");
            self.send_one(core, ctx);
            if self.sent < self.count {
                ctx.schedule(self.interval, app_token(idx, ATTACK_TICK));
            }
        }
    }

    fn on_timer(&mut self, core: &mut HostCore, ctx: &mut Ctx<'_>, idx: usize, user: u32) {
        if user == ATTACK_TICK && self.sent < self.count {
            self.send_one(core, ctx);
            if self.sent < self.count {
                ctx.schedule(self.interval, app_token(idx, ATTACK_TICK));
            }
        }
    }
}

/// A rogue-root attacker: forged *superior* configuration BPDUs
/// (priority 0x0000) claiming this host is the spanning-tree root. On an
/// unguarded port every bridge believes it; BPDU guard err-disables the
/// port at the first frame instead.
pub struct RogueBpduApp {
    /// Port to send from.
    pub port: PortId,
    /// BPDUs to send.
    pub count: u64,
    /// Inter-BPDU interval.
    pub interval: SimDuration,
    /// BPDUs sent so far.
    pub sent: u64,
}

impl RogueBpduApp {
    /// Configure a rogue-root BPDU source.
    pub fn new(port: PortId, count: u64, interval: SimDuration) -> App {
        App::RogueBpdu(RogueBpduApp {
            port,
            count,
            interval,
            sent: 0,
        })
    }

    fn send_one(&mut self, core: &mut HostCore, ctx: &mut Ctx<'_>) {
        use active_bridge_types::*;
        let src_mac = core.cfg.macs[self.port.0];
        // Priority 0 beats every real bridge (scenario default 0x8000):
        // processed anywhere, this claim wins the election outright.
        let me = BridgeId::new(0x0000, src_mac);
        let config = ConfigBpdu {
            root: me,
            root_cost: 0,
            bridge: me,
            port: 1,
            message_age: 0,
            max_age: 20,
            hello_time: 2,
            forward_delay: 15,
            tc: false,
            tca: false,
        };
        let payload = ieee_emit(&Bpdu::Config(config));
        let frame = FrameBuilder::new_llc(MacAddr::ALL_BRIDGES, src_mac)
            .payload(&Llc::BPDU.wrap(&payload))
            .build();
        core.send_raw(ctx, self.port, frame);
        self.sent += 1;
    }

    fn on_start(&mut self, core: &mut HostCore, ctx: &mut Ctx<'_>, idx: usize) {
        if self.count > 0 {
            ctx.probe_mark("attack.roguebpdu.start");
            self.send_one(core, ctx);
            if self.sent < self.count {
                ctx.schedule(self.interval, app_token(idx, ATTACK_TICK));
            }
        }
    }

    fn on_timer(&mut self, core: &mut HostCore, ctx: &mut Ctx<'_>, idx: usize, user: u32) {
        if user == ATTACK_TICK && self.sent < self.count {
            self.send_one(core, ctx);
            if self.sent < self.count {
                ctx.schedule(self.interval, app_token(idx, ATTACK_TICK));
            }
        }
    }
}

// --------------------------------------------------------------- delayed

/// The wrapper's own start-fire token. Inner apps use small user values
/// (1..=3), so the top of the range is reserved for the wrapper.
const DELAY_FIRE: u32 = u32::MAX;

/// An app whose active start is postponed — built with [`App::delayed`].
pub struct DelayedApp {
    /// How long after host start the inner app starts.
    pub after: SimDuration,
    inner: Box<App>,
    started: bool,
}

impl DelayedApp {
    /// The wrapped app.
    pub fn inner(&self) -> &App {
        &self.inner
    }

    /// Has the inner app been started yet?
    pub fn is_started(&self) -> bool {
        self.started
    }

    fn on_start(&mut self, core: &mut HostCore, ctx: &mut Ctx<'_>, idx: usize) {
        if self.after.is_zero() {
            self.started = true;
            self.inner.on_start(core, ctx, idx);
        } else {
            ctx.schedule(self.after, app_token(idx, DELAY_FIRE));
        }
    }

    fn on_timer(&mut self, core: &mut HostCore, ctx: &mut Ctx<'_>, idx: usize, user: u32) {
        if user == DELAY_FIRE && !self.started {
            self.started = true;
            self.inner.on_start(core, ctx, idx);
        } else {
            // Everything else belongs to the inner app — including a
            // DELAY_FIRE after we already started, which is a nested
            // wrapper's own fire (both levels share the token value).
            self.inner.on_timer(core, ctx, idx, user);
        }
    }

    fn on_tx_done(&mut self, core: &mut HostCore, ctx: &mut Ctx<'_>, idx: usize) {
        // Send-side pacing must not leak to an app that has not started:
        // the host broadcasts tx-done to every app, and an unstarted ttcp
        // sender would begin its write loop ahead of schedule.
        if self.started {
            self.inner.on_tx_done(core, ctx, idx);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::HostCostModel;
    use crate::host::{HostConfig, HostNode};
    use netsim::{SegmentConfig, SimTime, World};

    #[test]
    fn delayed_app_starts_late_and_unwraps() {
        let mut world = World::new(1);
        let lan = world.add_segment(SegmentConfig::default());
        let blast = BlastApp::new(PortId(0), MacAddr::local(9), 64, 5, SimDuration::from_ms(1));
        let app = App::delayed(SimDuration::from_ms(100), blast);
        assert!(matches!(app.unwrapped(), App::Blast(_)));
        let h = world.add_node(HostNode::new(
            "h",
            HostConfig::simple(
                MacAddr::local(1),
                Ipv4Addr::new(10, 1, 0, 1),
                HostCostModel::FREE,
            ),
            vec![app],
        ));
        world.attach(h, lan);
        world.run_until(SimTime::from_ms(50));
        let App::Blast(b) = world.node::<HostNode>(h).app(0).unwrapped() else {
            unreachable!()
        };
        assert_eq!(b.sent, 0, "nothing sent before the delay fires");
        world.run_until(SimTime::from_ms(300));
        let App::Blast(b) = world.node::<HostNode>(h).app(0).unwrapped() else {
            unreachable!()
        };
        assert_eq!(b.sent, 5, "the train runs to completion after the delay");
    }

    #[test]
    fn nested_delays_compose() {
        let mut world = World::new(1);
        let lan = world.add_segment(SegmentConfig::default());
        // 100 ms + 100 ms: the inner wrapper's fire reuses the same timer
        // token, so the outer must forward it once started.
        let app = App::delayed(
            SimDuration::from_ms(100),
            App::delayed(
                SimDuration::from_ms(100),
                BlastApp::new(PortId(0), MacAddr::local(9), 64, 3, SimDuration::from_ms(1)),
            ),
        );
        let h = world.add_node(HostNode::new(
            "h",
            HostConfig::simple(
                MacAddr::local(1),
                Ipv4Addr::new(10, 1, 0, 1),
                HostCostModel::FREE,
            ),
            vec![app],
        ));
        world.attach(h, lan);
        world.run_until(SimTime::from_ms(150));
        let App::Blast(b) = world.node::<HostNode>(h).app(0).unwrapped() else {
            unreachable!()
        };
        assert_eq!(b.sent, 0, "inner delay has not elapsed yet");
        world.run_until(SimTime::from_ms(400));
        let App::Blast(b) = world.node::<HostNode>(h).app(0).unwrapped() else {
            unreachable!()
        };
        assert_eq!(b.sent, 3, "nested wrappers must both fire");
    }

    /// ARP has no checksum, so a corrupting medium can poison the
    /// sender's cache with a MAC nobody owns. With `arp_refresh` set,
    /// a run of fruitless retransmissions drops the entry and the next
    /// send re-resolves the true MAC from the peer's reply.
    #[test]
    fn arp_refresh_heals_a_poisoned_cache() {
        let mut world = World::new(7);
        let lan = world.add_segment(SegmentConfig::default());
        let peer_mac = MacAddr::local(2);
        let peer_ip = Ipv4Addr::new(10, 1, 0, 2);
        let peer = world.add_node(HostNode::new(
            "peer",
            HostConfig::simple(peer_mac, peer_ip, HostCostModel::FREE),
            vec![],
        ));
        world.attach(peer, lan);

        let cfg = UploadConfig {
            poll: SimDuration::from_ms(10),
            initial_rto: SimDuration::from_ms(20),
            min_rto: SimDuration::from_ms(20),
            rto_ceiling: SimDuration::from_ms(40),
            rtt_gain: 0,
            max_retries: 1000,
            arp_refresh: 3,
        };
        let app =
            UploadApp::with_config(PortId(0), peer_ip, 4000, "poisoned.swl", vec![0u8; 64], cfg);
        let h = world.add_node(HostNode::new(
            "uploader",
            HostConfig::simple(
                MacAddr::local(1),
                Ipv4Addr::new(10, 1, 0, 1),
                HostCostModel::FREE,
            ),
            vec![app],
        ));
        world.attach(h, lan);
        // Poison the cache before the first send: one bit away from
        // the peer's real MAC, exactly as a corrupted reply leaves it.
        world
            .node_mut::<HostNode>(h)
            .core
            .seed_arp(peer_ip, MacAddr::local(0x8002));
        world.run_until(SimTime::from_ms(503));

        let host = world.node::<HostNode>(h);
        assert_eq!(
            host.core.arp_entry(peer_ip),
            Some(peer_mac),
            "the refresh must re-resolve the true MAC"
        );
        let App::Upload(a) = host.app(0).unwrapped() else {
            unreachable!()
        };
        assert!(
            a.retries >= cfg.arp_refresh,
            "the refresh rides on fruitless retransmissions ({} retries)",
            a.retries
        );
        assert!(
            !a.is_done(),
            "no TFTP server answers here, so the upload keeps retrying"
        );
    }

    /// The legacy transport (`arp_refresh` 0) never touches the cache:
    /// a poisoned entry stays poisoned forever — the failure mode the
    /// refresh knob exists to break.
    #[test]
    fn legacy_transport_never_refreshes_a_poisoned_cache() {
        let mut world = World::new(7);
        let lan = world.add_segment(SegmentConfig::default());
        let peer_ip = Ipv4Addr::new(10, 1, 0, 2);
        let peer = world.add_node(HostNode::new(
            "peer",
            HostConfig::simple(MacAddr::local(2), peer_ip, HostCostModel::FREE),
            vec![],
        ));
        world.attach(peer, lan);
        let bogus = MacAddr::local(0x8002);
        let app = UploadApp::with_config(
            PortId(0),
            peer_ip,
            4000,
            "poisoned.swl",
            vec![0u8; 64],
            UploadConfig {
                poll: SimDuration::from_ms(10),
                initial_rto: SimDuration::from_ms(20),
                min_rto: SimDuration::from_ms(20),
                rto_ceiling: SimDuration::from_ms(40),
                rtt_gain: 0,
                max_retries: 1000,
                arp_refresh: 0,
            },
        );
        let h = world.add_node(HostNode::new(
            "uploader",
            HostConfig::simple(
                MacAddr::local(1),
                Ipv4Addr::new(10, 1, 0, 1),
                HostCostModel::FREE,
            ),
            vec![app],
        ));
        world.attach(h, lan);
        world.node_mut::<HostNode>(h).core.seed_arp(peer_ip, bogus);
        world.run_until(SimTime::from_ms(503));

        let host = world.node::<HostNode>(h);
        assert_eq!(
            host.core.arp_entry(peer_ip),
            Some(bogus),
            "without a refresh the poisoned entry is permanent"
        );
        let App::Upload(a) = host.app(0).unwrapped() else {
            unreachable!()
        };
        assert!(a.retries > 0 && !a.is_done());
    }

    #[test]
    fn zero_delay_starts_immediately() {
        let mut world = World::new(1);
        let lan = world.add_segment(SegmentConfig::default());
        let app = App::delayed(
            SimDuration::ZERO,
            BlastApp::new(PortId(0), MacAddr::local(9), 64, 1, SimDuration::from_ms(1)),
        );
        let h = world.add_node(HostNode::new(
            "h",
            HostConfig::simple(
                MacAddr::local(1),
                Ipv4Addr::new(10, 1, 0, 1),
                HostCostModel::FREE,
            ),
            vec![app],
        ));
        world.attach(h, lan);
        world.run_until(SimTime::from_ms(1));
        let App::Blast(b) = world.node::<HostNode>(h).app(0).unwrapped() else {
            unreachable!()
        };
        assert_eq!(b.sent, 1);
    }
}
