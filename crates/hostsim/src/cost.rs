//! End-system cost model.
//!
//! The paper's hosts were "Intel Pentiums running with a version 2.0.28
//! Linux kernel"; their software costs (syscall per write, protocol
//! processing per packet, copying per byte) bound the *unbridged* ttcp at
//! 76 Mb/s and pin the small-write rates. Constants calibrated in
//! EXPERIMENTS.md.

use netsim::SimDuration;

/// Per-host software costs.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct HostCostModel {
    /// Receive-path fixed cost per frame (interrupt, protocol processing).
    pub rx_frame_ns: u64,
    /// Receive-path per-byte cost (copy to user space).
    pub rx_byte_ns: u64,
    /// Transmit-path fixed cost per send (syscall + protocol).
    pub tx_frame_ns: u64,
    /// Transmit-path per-byte cost.
    pub tx_byte_ns: u64,
    /// Cost of one application `write()` before data reaches the
    /// protocol (ttcp's writing loop).
    pub write_ns: u64,
}

impl HostCostModel {
    /// Free (infinitely fast) hosts, for logic-only tests.
    pub const FREE: HostCostModel = HostCostModel {
        rx_frame_ns: 0,
        rx_byte_ns: 0,
        tx_frame_ns: 0,
        tx_byte_ns: 0,
        write_ns: 0,
    };

    /// The 1997 Pentium/Linux preset. Receive-side processing of a
    /// full-size frame ≈ 131 µs; together with the ACK stream's share it
    /// bounds the unbridged ttcp at the paper's 76 Mb/s.
    pub fn pc_1997() -> HostCostModel {
        HostCostModel {
            rx_frame_ns: 95_000,
            rx_byte_ns: 40,
            tx_frame_ns: 50_000,
            tx_byte_ns: 35,
            write_ns: 30_000,
        }
    }

    /// Receive service time for a frame of `len` octets.
    #[inline]
    pub fn rx_time(&self, len: usize) -> SimDuration {
        SimDuration::from_ns(self.rx_frame_ns + self.rx_byte_ns * len as u64)
    }

    /// Transmit service time for a frame of `len` octets.
    #[inline]
    pub fn tx_time(&self, len: usize) -> SimDuration {
        SimDuration::from_ns(self.tx_frame_ns + self.tx_byte_ns * len as u64)
    }

    /// Application write cost.
    pub fn write_time(&self) -> SimDuration {
        SimDuration::from_ns(self.write_ns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unbridged_ttcp_bound_is_paper_neighborhood() {
        let m = HostCostModel::pc_1997();
        // Receiver-side service of a full frame bounds unbridged
        // throughput (ACK emission overlaps on the separate tx path); the
        // measured end-to-end figure lands at ~72 Mb/s (paper: 76).
        let t = m.rx_time(1514).as_ns() as f64 / 1e9;
        let mbps = 1462.0 * 8.0 / t / 1e6;
        assert!((65.0..85.0).contains(&mbps), "unbridged bound {mbps} Mb/s");
    }

    #[test]
    fn free_model_is_free() {
        assert_eq!(HostCostModel::FREE.rx_time(5000), SimDuration::ZERO);
    }
}
