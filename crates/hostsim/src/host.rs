//! Simulated end systems: a host with (possibly several) NICs, a small
//! protocol stack (ARP, IPv4, ICMP echo responder), software costs on
//! both paths, and pluggable measurement applications.

use std::collections::HashMap;
use std::net::Ipv4Addr;

use ether::{EtherType, Frame, FrameBuilder, MacAddr};
use netsim::{Ctx, FrameBuf, Node, Offer, PortId, ServiceQueue, TimerToken};
use netstack::ipv4::Protocol;
use netstack::{ArpOp, ArpPacket, Echo, EchoKind};

use crate::apps::App;
use crate::cost::HostCostModel;

const KIND_RX: u64 = 0;
const KIND_TX: u64 = 1;
const KIND_APP: u64 = 2;

fn rx_token() -> TimerToken {
    TimerToken(KIND_RX << 56)
}
fn tx_token() -> TimerToken {
    TimerToken(KIND_TX << 56)
}
pub(crate) fn app_token(app: usize, user: u32) -> TimerToken {
    TimerToken(KIND_APP << 56 | (app as u64) << 32 | user as u64)
}

/// Host configuration.
#[derive(Clone, Debug)]
pub struct HostConfig {
    /// One MAC per port.
    pub macs: Vec<MacAddr>,
    /// One IP per port.
    pub ips: Vec<Ipv4Addr>,
    /// Software cost model.
    pub cost: HostCostModel,
    /// Accept all frames (the Section 7.5 measurement host reads raw
    /// packets), not just ours/broadcast.
    pub promiscuous: bool,
    /// Expected distinct IP peers (a topology-derived hint; `0` =
    /// unknown): the ARP table is pre-sized from it.
    pub arp_hint: usize,
}

impl HostConfig {
    /// A single-homed host.
    pub fn simple(mac: MacAddr, ip: Ipv4Addr, cost: HostCostModel) -> HostConfig {
        HostConfig {
            macs: vec![mac],
            ips: vec![ip],
            cost,
            promiscuous: false,
            arp_hint: 0,
        }
    }

    /// Set the expected-peer hint (see [`HostConfig::arp_hint`]).
    pub fn with_arp_hint(mut self, peers: usize) -> HostConfig {
        self.arp_hint = peers;
        self
    }
}

/// The host's stack state, shared with its applications.
pub struct HostCore {
    /// Display name.
    pub name: String,
    /// Configuration.
    pub cfg: HostConfig,
    arp: netsim::FastMap<Ipv4Addr, MacAddr>,
    #[allow(clippy::type_complexity)]
    arp_waiting: HashMap<Ipv4Addr, Vec<(PortId, Protocol, Vec<u8>, bool)>>,
    rx_q: ServiceQueue<(PortId, FrameBuf)>,
    tx_q: ServiceQueue<(PortId, FrameBuf)>,
    reasm: netstack::ipv4::Reassembler,
    ip_ident: u16,
    /// Reusable transport-layer build buffer (echo replies).
    scratch: Vec<u8>,
    /// Echo requests answered.
    pub echo_replies_sent: u64,
    /// Frames accepted off the wire.
    pub frames_rx: u64,
    /// Experimental-EtherType frames received (workload accounting).
    pub exp_frames_rx: u64,
    /// Octets of experimental frames received.
    pub exp_bytes_rx: u64,
}

impl HostCore {
    /// The port whose IP is `ip`.
    fn port_of_ip(&self, ip: Ipv4Addr) -> Option<usize> {
        self.cfg.ips.iter().position(|&i| i == ip)
    }

    /// Queue a raw frame for transmission (charged the tx cost). Accepts
    /// anything convertible into a [`FrameBuf`]; re-sending a shared
    /// frame is a refcount bump.
    pub fn send_raw(&mut self, ctx: &mut Ctx<'_>, port: PortId, frame: impl Into<FrameBuf>) {
        let frame = frame.into();
        let t = self.cfg.cost.tx_time(frame.len());
        match self.tx_q.offer((port, frame)) {
            Offer::Started => {
                ctx.schedule(t, tx_token());
            }
            Offer::Queued => {}
            Offer::Dropped => {
                ctx.bump("host.tx_drops", 1);
            }
        }
    }

    /// Install a static ARP entry (tests and fixed-infrastructure
    /// setups; also how a test models a cache poisoned by a corrupted
    /// reply).
    pub fn seed_arp(&mut self, dst_ip: Ipv4Addr, mac: MacAddr) {
        self.arp.insert(dst_ip, mac);
    }

    /// Forget the resolved MAC for `dst_ip`, forcing the next send to
    /// re-ARP. ARP carries no checksum, so on a corrupting medium a
    /// bit-flipped reply (or a corrupted frame fed to opportunistic
    /// learning) can poison the cache with a MAC nobody owns — every
    /// subsequent unicast then vanishes into the flood. A transport that
    /// keeps timing out can call this to re-resolve (returns whether an
    /// entry was actually dropped).
    pub fn invalidate_arp(&mut self, dst_ip: Ipv4Addr) -> bool {
        self.arp.remove(&dst_ip).is_some()
    }

    /// Send an IP payload to `dst_ip` out of `port`, resolving the MAC
    /// via ARP if necessary (pending packets queue behind the request).
    /// Payloads exceeding the MTU are refused (the loader-stack rule).
    pub fn send_ip(
        &mut self,
        ctx: &mut Ctx<'_>,
        port: PortId,
        dst_ip: Ipv4Addr,
        proto: Protocol,
        payload: &[u8],
    ) {
        self.send_ip_inner(ctx, port, dst_ip, proto, payload, false);
    }

    /// Like [`HostCore::send_ip`], but fragments oversize payloads (the
    /// hosts run full IP; `ping -s 4096` worked on the paper's testbed).
    pub fn send_ip_fragmenting(
        &mut self,
        ctx: &mut Ctx<'_>,
        port: PortId,
        dst_ip: Ipv4Addr,
        proto: Protocol,
        payload: &[u8],
    ) {
        self.send_ip_inner(ctx, port, dst_ip, proto, payload, true);
    }

    /// Send an IP datagram whose transport payload is written by `build`
    /// *directly into the frame buffer* — Ethernet header, IP header and
    /// payload compose in one pass with zero intermediate copies (the
    /// per-frame hot path: ttcp segments, ACKs, echo traffic).
    ///
    /// `build` must append exactly `payload_len` bytes (debug-asserted);
    /// the payload must fit one MTU (oversize is counted and dropped,
    /// like [`HostCore::send_ip`]). When the destination MAC is not yet
    /// resolved, the payload is materialized once and parked behind the
    /// ARP exchange.
    pub fn send_ip_built(
        &mut self,
        ctx: &mut Ctx<'_>,
        port: PortId,
        dst_ip: Ipv4Addr,
        proto: Protocol,
        payload_len: usize,
        build: impl FnOnce(&mut Vec<u8>),
    ) {
        let Some(&dst_mac) = self.arp.get(&dst_ip) else {
            // Unresolved: build into a parked buffer (cold path).
            let mut payload = Vec::with_capacity(payload_len);
            build(&mut payload);
            debug_assert_eq!(payload.len(), payload_len, "build wrote a different length");
            self.send_ip_inner(ctx, port, dst_ip, proto, &payload, false);
            return;
        };
        if netstack::ipv4::HEADER_LEN + payload_len > 1500 {
            ctx.bump("host.oversize_drops", 1);
            return;
        }
        self.compose_and_send(ctx, port, dst_mac, dst_ip, proto, payload_len, build);
    }

    /// The shared one-pass frame composer behind [`HostCore::send_ip`]
    /// and [`HostCore::send_ip_built`]: Ethernet header + IP header into a
    /// pooled buffer, `build` appends exactly `payload_len` transport
    /// bytes behind them, pad to the Ethernet minimum, transmit. The
    /// caller has resolved the MAC and bounded the payload to one MTU.
    #[allow(clippy::too_many_arguments)]
    fn compose_and_send(
        &mut self,
        ctx: &mut Ctx<'_>,
        port: PortId,
        dst_mac: MacAddr,
        dst_ip: Ipv4Addr,
        proto: Protocol,
        payload_len: usize,
        build: impl FnOnce(&mut Vec<u8>),
    ) {
        let src_ip = self.cfg.ips[port.0];
        let src_mac = self.cfg.macs[port.0];
        let ident = self.ip_ident;
        self.ip_ident = self.ip_ident.wrapping_add(1);
        let total = ether::HEADER_LEN + netstack::ipv4::HEADER_LEN + payload_len;
        let mut buf = ctx.take_buf(total.max(ether::MIN_FRAME));
        let mut eth = [0u8; ether::HEADER_LEN];
        eth[0..6].copy_from_slice(&dst_mac.octets());
        eth[6..12].copy_from_slice(&src_mac.octets());
        eth[12..14].copy_from_slice(&EtherType::IPV4.0.to_be_bytes());
        buf.extend_from_slice(&eth);
        netstack::ipv4::emit_header_append(
            &mut buf,
            src_ip,
            dst_ip,
            proto,
            ident,
            64,
            payload_len,
            false,
            0,
        );
        build(&mut buf);
        debug_assert_eq!(buf.len(), total, "build wrote a different length");
        if buf.len() < ether::MIN_FRAME {
            buf.resize(ether::MIN_FRAME, 0); // Ethernet minimum padding
        }
        self.send_raw(ctx, port, FrameBuf::from(buf));
    }

    fn send_ip_inner(
        &mut self,
        ctx: &mut Ctx<'_>,
        port: PortId,
        dst_ip: Ipv4Addr,
        proto: Protocol,
        payload: &[u8],
        fragment: bool,
    ) {
        let Some(&dst_mac) = self.arp.get(&dst_ip) else {
            // ARP: broadcast a who-has, park the packet (the one place a
            // payload is copied to the heap — once per unresolved peer,
            // not per frame).
            self.arp_waiting.entry(dst_ip).or_default().push((
                port,
                proto,
                payload.to_vec(),
                fragment,
            ));
            let req = ArpPacket::request(self.cfg.macs[port.0], self.cfg.ips[port.0], dst_ip);
            let frame =
                FrameBuilder::new(MacAddr::BROADCAST, self.cfg.macs[port.0], EtherType::ARP)
                    .payload(&req.emit())
                    .build();
            self.send_raw(ctx, port, frame);
            return;
        };
        self.emit_ip(ctx, port, dst_mac, dst_ip, proto, payload, fragment);
    }

    #[allow(clippy::too_many_arguments)]
    fn emit_ip(
        &mut self,
        ctx: &mut Ctx<'_>,
        port: PortId,
        dst_mac: MacAddr,
        dst_ip: Ipv4Addr,
        proto: Protocol,
        payload: &[u8],
        fragment: bool,
    ) {
        if netstack::ipv4::HEADER_LEN + payload.len() > 1500 {
            if !fragment {
                // The ident is consumed even on a refused datagram (as the
                // pre-refactor path did, where it was drawn before the
                // size check).
                self.ip_ident = self.ip_ident.wrapping_add(1);
                ctx.bump("host.oversize_drops", 1);
                return;
            }
            // Oversize: the (cold) fragmentation path keeps the layered
            // builders.
            let src_ip = self.cfg.ips[port.0];
            let src_mac = self.cfg.macs[port.0];
            let ident = self.ip_ident;
            self.ip_ident = self.ip_ident.wrapping_add(1);
            let packets =
                netstack::ipv4::emit_fragments(src_ip, dst_ip, proto, ident, 64, payload, 1500);
            for ip in packets {
                let frame = FrameBuilder::new(dst_mac, src_mac, EtherType::IPV4)
                    .payload(&ip)
                    .build();
                self.send_raw(ctx, port, frame);
            }
            return;
        }
        // Hot path: one-pass composition into a pooled buffer — one
        // payload copy, no intermediate datagram vector, and in steady
        // state no allocation at all.
        self.compose_and_send(ctx, port, dst_mac, dst_ip, proto, payload.len(), |buf| {
            buf.extend_from_slice(payload)
        });
    }

    /// Look up a resolved MAC (tests).
    pub fn arp_entry(&self, ip: Ipv4Addr) -> Option<MacAddr> {
        self.arp.get(&ip).copied()
    }
}

/// A simulated host node.
pub struct HostNode {
    /// The stack.
    pub core: HostCore,
    apps: Vec<Option<App>>,
    /// True when some app observes raw frames (the per-frame raw-tap
    /// fan-out is skipped entirely otherwise).
    has_raw_tap: bool,
    /// True when some app reacts to transmit completions.
    has_tx_done: bool,
}

impl HostNode {
    /// Build a host with the given applications.
    pub fn new(name: impl Into<String>, cfg: HostConfig, apps: Vec<App>) -> HostNode {
        let has_raw_tap = apps.iter().any(|a| a.wants_raw());
        let has_tx_done = apps.iter().any(|a| a.wants_tx_done());
        let arp = netsim::FastMap::with_capacity_and_hasher(cfg.arp_hint, Default::default());
        HostNode {
            core: HostCore {
                name: name.into(),
                cfg,
                arp,
                arp_waiting: HashMap::new(),
                rx_q: ServiceQueue::new(256),
                tx_q: ServiceQueue::new(256),
                reasm: netstack::ipv4::Reassembler::new(),
                ip_ident: 1,
                scratch: Vec::new(),
                echo_replies_sent: 0,
                frames_rx: 0,
                exp_frames_rx: 0,
                exp_bytes_rx: 0,
            },
            apps: apps.into_iter().map(Some).collect(),
            has_raw_tap,
            has_tx_done,
        }
    }

    /// Application access (results inspection after a run).
    pub fn app(&self, idx: usize) -> &App {
        self.apps[idx].as_ref().expect("app checked out")
    }

    /// Mutable application access.
    pub fn app_mut(&mut self, idx: usize) -> &mut App {
        self.apps[idx].as_mut().expect("app checked out")
    }

    /// Number of applications.
    pub fn num_apps(&self) -> usize {
        self.apps.len()
    }

    fn for_each_app(
        &mut self,
        ctx: &mut Ctx<'_>,
        mut f: impl FnMut(&mut App, &mut HostCore, &mut Ctx<'_>, usize),
    ) {
        for i in 0..self.apps.len() {
            if let Some(mut app) = self.apps[i].take() {
                f(&mut app, &mut self.core, ctx, i);
                self.apps[i] = Some(app);
            }
        }
    }

    fn process_rx(&mut self, ctx: &mut Ctx<'_>, port: PortId, frame: FrameBuf) {
        self.process_rx_view(ctx, port, &frame);
        // The frame ends its life here on most hosts; hand the buffer
        // back to the world's pool when this was the last reference.
        ctx.recycle_frame(frame);
    }

    fn process_rx_view(&mut self, ctx: &mut Ctx<'_>, port: PortId, frame: &FrameBuf) {
        let Ok(parsed) = Frame::parse(frame) else {
            return;
        };
        let my_mac = self.core.cfg.macs[port.0];
        let dst = parsed.dst();
        let mine = dst == my_mac || dst.is_broadcast();
        if !mine && !self.core.cfg.promiscuous {
            return;
        }
        self.core.frames_rx += 1;

        // Raw tap for every accepted frame (the probe app); skipped
        // outright on hosts where no app reads raw frames.
        if self.has_raw_tap {
            self.for_each_app(ctx, |app, core, ctx, idx| {
                app.on_raw(core, ctx, idx, port, &parsed)
            });
        }

        if !mine {
            return;
        }
        match parsed.ethertype() {
            EtherType::ARP => {
                let Ok(arp) = ArpPacket::parse(parsed.payload()) else {
                    return;
                };
                match arp.op {
                    ArpOp::Request if arp.tpa == self.core.cfg.ips[port.0] => {
                        let reply = arp.reply_with(my_mac);
                        let out = FrameBuilder::new(arp.sha, my_mac, EtherType::ARP)
                            .payload(&reply.emit())
                            .build();
                        self.core.send_raw(ctx, port, out);
                    }
                    ArpOp::Reply => {
                        self.core.arp.insert(arp.spa, arp.sha);
                        if let Some(pending) = self.core.arp_waiting.remove(&arp.spa) {
                            for (p, proto, payload, fragment) in pending {
                                self.core
                                    .emit_ip(ctx, p, arp.sha, arp.spa, proto, &payload, fragment);
                            }
                        }
                    }
                    _ => {}
                }
            }
            EtherType::IPV4 => {
                // Fragment-tolerant parse (the hosts run full IP).
                let Ok(ip) = netstack::ipv4::FragPacket::parse(parsed.payload()) else {
                    return;
                };
                if self.core.port_of_ip(ip.dst()).is_none() {
                    return;
                }
                // Opportunistic ARP learning from traffic.
                self.core.arp.insert(ip.src(), parsed.src());
                let (src, dst, proto) = (ip.src(), ip.dst(), ip.protocol());
                if ip.is_fragment() {
                    // When None: more fragments pending.
                    if let Some(whole) = self.core.reasm.push(&ip) {
                        self.handle_ip(ctx, port, src, dst, proto, &whole);
                    }
                } else {
                    // Zero-copy: hand the payload slice straight down;
                    // it borrows the delivered frame buffer.
                    self.handle_ip(ctx, port, src, dst, proto, ip.payload());
                }
            }
            EtherType::EXPERIMENTAL => {
                self.core.exp_frames_rx += 1;
                self.core.exp_bytes_rx += parsed.len() as u64;
            }
            _ => {}
        }
    }

    fn handle_ip(
        &mut self,
        ctx: &mut Ctx<'_>,
        port: PortId,
        src: Ipv4Addr,
        dst: Ipv4Addr,
        proto: Protocol,
        payload: &[u8],
    ) {
        match proto {
            Protocol::ICMP => {
                if let Ok(echo) = Echo::parse(payload) {
                    match echo.kind {
                        EchoKind::Request => {
                            let reply_len = payload.len();
                            if netstack::ipv4::HEADER_LEN + reply_len <= 1500 {
                                // Common case: the reply is the verified
                                // request memcpy'd into the wire frame
                                // with two fields patched (O(1) checksum
                                // derivation) — no per-reply checksum
                                // pass.
                                self.core.send_ip_built(
                                    ctx,
                                    port,
                                    src,
                                    Protocol::ICMP,
                                    reply_len,
                                    |buf| {
                                        Echo::reply_from_verified(buf, payload);
                                    },
                                );
                            } else {
                                // Oversize echo: build once, fragment.
                                let mut reply = std::mem::take(&mut self.core.scratch);
                                reply.clear();
                                Echo::emit_into(
                                    &mut reply,
                                    EchoKind::Reply,
                                    echo.ident,
                                    echo.seq,
                                    echo.payload,
                                );
                                self.core.send_ip_fragmenting(
                                    ctx,
                                    port,
                                    src,
                                    Protocol::ICMP,
                                    &reply,
                                );
                                self.core.scratch = reply;
                            }
                            self.core.echo_replies_sent += 1;
                        }
                        EchoKind::Reply => {
                            let (ident, seq) = (echo.ident, echo.seq);
                            self.for_each_app(ctx, |app, core, ctx, idx| {
                                app.on_echo_reply(core, ctx, idx, ident, seq)
                            });
                        }
                    }
                }
            }
            proto => {
                self.for_each_app(ctx, |app, core, ctx, idx| {
                    app.on_ip(core, ctx, idx, port, src, dst, proto, payload)
                });
            }
        }
    }
}

impl Node for HostNode {
    fn name(&self) -> &str {
        &self.core.name
    }

    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        assert_eq!(
            ctx.num_ports(),
            self.core.cfg.macs.len(),
            "host {} configured for {} ports but attached to {}",
            self.core.name,
            self.core.cfg.macs.len(),
            ctx.num_ports()
        );
        self.for_each_app(ctx, |app, core, ctx, idx| app.on_start(core, ctx, idx));
    }

    fn on_frame(&mut self, ctx: &mut Ctx<'_>, port: PortId, frame: FrameBuf) {
        let t = self.core.cfg.cost.rx_time(frame.len());
        // Null-event elision: a zero-cost receive path with an idle queue
        // models no latency at all, so the frame is processed here and
        // now instead of bouncing through a zero-delay timer event. This
        // halves the event count per delivery on measurement topologies
        // (`HostCostModel::FREE` probes/listeners); hosts with a real
        // cost model still serialize through the service queue.
        if t.is_zero() && self.core.rx_q.head().is_none() {
            self.process_rx(ctx, port, frame);
            return;
        }
        match self.core.rx_q.offer((port, frame)) {
            Offer::Started => {
                ctx.schedule(t, rx_token());
            }
            Offer::Queued => {}
            Offer::Dropped => {
                ctx.bump("host.rx_drops", 1);
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: TimerToken) {
        match token.0 >> 56 {
            KIND_RX => {
                let ((port, frame), next) = self.core.rx_q.complete();
                if let Some((_, f)) = next {
                    let t = self.core.cfg.cost.rx_time(f.len());
                    ctx.schedule(t, rx_token());
                }
                self.process_rx(ctx, port, frame);
            }
            KIND_TX => {
                let ((port, frame), next) = self.core.tx_q.complete();
                if let Some((_, f)) = next {
                    let t = self.core.cfg.cost.tx_time(f.len());
                    ctx.schedule(t, tx_token());
                }
                ctx.send(port, frame);
                // Transmission completed: apps may have more to send
                // (write pacing). Skipped when no app paces on tx.
                if self.has_tx_done {
                    self.for_each_app(ctx, |app, core, ctx, idx| app.on_tx_done(core, ctx, idx));
                }
            }
            KIND_APP => {
                let app_idx = ((token.0 >> 32) & 0xFF_FFFF) as usize;
                let user = (token.0 & 0xFFFF_FFFF) as u32;
                if let Some(mut app) = self.apps.get_mut(app_idx).and_then(Option::take) {
                    app.on_timer(&mut self.core, ctx, app_idx, user);
                    self.apps[app_idx] = Some(app);
                }
            }
            k => unreachable!("unknown host timer kind {k}"),
        }
    }

    fn as_any(&self) -> &dyn core::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn core::any::Any {
        self
    }
}
