//! # hostsim — the end systems of the Active Bridging testbed
//!
//! Simulated Pentium/Linux hosts ([`HostNode`]) with a small real stack
//! (ARP, IPv4 with host-side fragmentation, ICMP echo responder) and the
//! measurement applications the paper's evaluation runs:
//!
//! * [`PingApp`] — the Figure 9 latency tool;
//! * [`TtcpSendApp`]/[`TtcpRecvApp`] — the Figure 10 / frame-rate ttcp
//!   pair over `netstack::tcplite`;
//! * [`UploadApp`] — delivers switchlet images to a bridge's TFTP loader;
//! * [`ProbeApp`] — the Section 7.5 two-NIC agility probe;
//! * [`BlastApp`] — a raw-frame workload generator;
//! * [`RepeaterNode`] — the user-mode "C buffered repeater" baseline.

pub mod apps;
pub mod cost;
pub mod host;
pub mod repeater;

pub use apps::{
    App, ArpStormApp, BlastApp, DelayedApp, MacFloodApp, PingApp, ProbeApp, RogueBpduApp,
    TtcpRecvApp, TtcpSendApp, UploadApp, UploadConfig,
};
pub use cost::HostCostModel;
pub use host::{HostConfig, HostCore, HostNode};
pub use repeater::RepeaterNode;

/// The TFTP server port on bridges.
pub const TFTP_PORT: u16 = 69;
