//! The "very simple buffered repeater in C" — the paper's user-mode
//! baseline: "This program simply opens two Ethernet devices in
//! promiscuous mode and, for each packet received on one of the
//! interfaces, writes the packet on the other. This gives some idea of the
//! costs caused by bringing the data through the Linux kernel into user
//! space."
//!
//! Same store-compute-forward structure as the bridge, with the
//! [`netsim::CostModel::c_repeater_1997`] cost model (kernel path, near-
//! zero processing) and no bridge logic at all.

use netsim::{CostModel, Ctx, FrameBuf, Node, Offer, PortId, ServiceQueue, TimerToken};

/// The C buffered repeater.
pub struct RepeaterNode {
    name: String,
    cost: CostModel,
    q: ServiceQueue<(PortId, FrameBuf)>,
    /// Frames forwarded.
    pub forwarded: u64,
}

impl RepeaterNode {
    /// Create a repeater (must be attached to exactly two segments).
    pub fn new(name: impl Into<String>, cost: CostModel) -> RepeaterNode {
        RepeaterNode {
            name: name.into(),
            cost,
            q: ServiceQueue::new(256),
            forwarded: 0,
        }
    }
}

impl Node for RepeaterNode {
    fn name(&self) -> &str {
        &self.name
    }

    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        assert_eq!(ctx.num_ports(), 2, "a repeater joins exactly two LANs");
    }

    fn on_frame(&mut self, ctx: &mut Ctx<'_>, port: PortId, frame: FrameBuf) {
        let t = self.cost.service_time(frame.len());
        match self.q.offer((port, frame)) {
            Offer::Started => {
                ctx.schedule(t, TimerToken(0));
            }
            Offer::Queued => {}
            Offer::Dropped => {
                ctx.bump("repeater.drops", 1);
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, _token: TimerToken) {
        let ((port, frame), next) = self.q.complete();
        if let Some((_, f)) = next {
            let t = self.cost.service_time(f.len());
            ctx.schedule(t, TimerToken(0));
        }
        let out = PortId(1 - port.0);
        ctx.send(out, frame);
        self.forwarded += 1;
    }

    fn as_any(&self) -> &dyn core::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn core::any::Any {
        self
    }
}
