//! Section 7.5 — function agility on the ring: time from injecting an
//! 802.1D BPDU to (a) the new protocol reaching the far side and (b) data
//! forwarding again. Paper: 0.056 s and 30.1 s.

use ab_bench::run_agility;
use criterion::{criterion_group, criterion_main, Criterion};

fn print_table() {
    println!("\n=== Section 7.5: agility on the 3-bridge ring ===");
    println!(
        "{:>5}  {:>14}  {:>14}",
        "run", "start->IEEE(s)", "start->ping(s)"
    );
    let mut sum_ieee = 0.0;
    let mut sum_ping = 0.0;
    let n = 5;
    for seed in 0..n {
        let a = run_agility(seed as u64 + 1);
        let ieee = a.to_ieee_s.unwrap_or(f64::NAN);
        let ping = a.to_ping_s.unwrap_or(f64::NAN);
        sum_ieee += ieee;
        sum_ping += ping;
        println!("{seed:>5}  {ieee:>14.4}  {ping:>14.3}");
    }
    println!(
        "{:>5}  {:>14.4}  {:>14.3}",
        "avg",
        sum_ieee / n as f64,
        sum_ping / n as f64
    );
    println!("paper:          0.0560          30.100");
    println!("(switch-over beats 0.1 s; re-forwarding is 2 x forward-delay)\n");
}

fn bench(c: &mut Criterion) {
    print_table();
    let mut g = c.benchmark_group("sec75");
    g.sample_size(10);
    g.bench_function("agility_run", |b| b.iter(|| run_agility(1)));
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
