//! Figure 10 — ttcp throughput vs packet (write) size for the three
//! configurations. Paper endpoints: 76 Mb/s direct, 16 Mb/s bridged at
//! 8 KB writes; the bridge sustains ~44% of the C repeater.

use ab_bench::{run_ttcp, table, Forwarder};
use criterion::{criterion_group, criterion_main, Criterion};

const SIZES: [usize; 6] = [32, 512, 1024, 2048, 4096, 8192];

fn volume(write: usize) -> u64 {
    // Enough writes to reach steady state without hour-long small-write
    // transfers: at least 60 KB, at most 2 MB, targeting ~400 writes.
    ((write as u64) * 400).clamp(60_000, 2_000_000)
}

fn print_figure() {
    println!("\n=== Figure 10: ttcp throughput (Mb/s) ===");
    let mut rows = Vec::new();
    for &size in &SIZES {
        let d = run_ttcp(Forwarder::Direct, size, volume(size), 10);
        let r = run_ttcp(Forwarder::Repeater, size, volume(size), 10);
        let b = run_ttcp(Forwarder::Bridge, size, volume(size), 10);
        rows.push(vec![
            size.to_string(),
            format!("{:.2}", d.mbps),
            format!("{:.2}", r.mbps),
            format!("{:.2}", b.mbps),
            format!("{:.0}%", b.mbps / r.mbps * 100.0),
        ]);
    }
    println!(
        "{}",
        table::render(
            &[
                "size(B)",
                "direct",
                "C repeater",
                "active bridge",
                "bridge/repeater"
            ],
            &rows
        )
    );
    println!("paper: direct 76 Mb/s and bridge 16 Mb/s at 8 KB; bridge = 44% of repeater.\n");
}

fn bench(c: &mut Criterion) {
    print_figure();
    let mut g = c.benchmark_group("fig10");
    g.sample_size(10);
    g.bench_function("bridge_ttcp_8K_1MB", |b| {
        b.iter(|| run_ttcp(Forwarder::Bridge, 8192, 1_000_000, 10))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
