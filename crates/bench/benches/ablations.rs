//! Ablations of the design choices DESIGN.md calls out:
//!
//! * learning on/off — bystander-LAN traffic ratio;
//! * spanning tree on/off — loop survival;
//! * native vs VM data plane — end-to-end throughput and the measured
//!   interpreter instruction count per frame;
//! * verifier cost vs module size.

use ab_bench::{run_ttcp, table, Forwarder};
use ab_scenario::{self as scenario, host_ip, host_mac};
use active_bridge::{BridgeConfig, BridgeNode};
use criterion::{criterion_group, criterion_main, Criterion};
use ether::MacAddr;
use hostsim::{BlastApp, HostConfig, HostCostModel, HostNode};
use netsim::{PortId, SimDuration, SimTime, World};
use switchlet::{verify_module, ModuleBuilder, Op, Ty};

fn bystander_traffic(learning: bool) -> u64 {
    let mut world = World::new(21);
    let segs = scenario::lans(&mut world, 3);
    let boot: &[&str] = if learning {
        &["bridge_learning"]
    } else {
        &["bridge_dumb"]
    };
    scenario::bridge(&mut world, 0, &segs, BridgeConfig::default(), boot);
    // Host 2 announces itself, then host 1 streams 200 frames to it.
    let h2 = world.add_node(HostNode::new(
        "h2",
        HostConfig::simple(host_mac(2), host_ip(2), HostCostModel::FREE),
        vec![BlastApp::new(
            PortId(0),
            host_mac(1),
            64,
            1,
            SimDuration::from_ms(1),
        )],
    ));
    world.attach(h2, segs[1]);
    let h1 = world.add_node(HostNode::new(
        "h1",
        HostConfig::simple(host_mac(1), host_ip(1), HostCostModel::FREE),
        vec![BlastApp::new(
            PortId(0),
            host_mac(2),
            512,
            200,
            SimDuration::from_ms(2),
        )],
    ));
    world.attach(h1, segs[0]);
    world.run_until(SimTime::from_secs(2));
    // Frames the bridge put onto the bystander LAN's wire.
    world.segment(segs[2]).counters().tx_frames
}

fn loop_frames(stp: bool) -> u64 {
    let mut world = World::new(22);
    let segs = scenario::lans(&mut world, 2);
    let boot: &[&str] = if stp {
        &["bridge_learning", "stp_ieee"]
    } else {
        &["bridge_learning"]
    };
    for i in 0..2 {
        scenario::bridge(&mut world, i, &segs, BridgeConfig::default(), boot);
    }
    world.run_until(SimTime::from_secs(35));
    let before =
        world.segment(segs[0]).counters().tx_frames + world.segment(segs[1]).counters().tx_frames;
    let h = world.add_node(HostNode::new(
        "h",
        HostConfig::simple(host_mac(1), host_ip(1), HostCostModel::FREE),
        vec![BlastApp::new(
            PortId(0),
            MacAddr::BROADCAST,
            64,
            1,
            SimDuration::from_ms(1),
        )],
    ));
    world.attach(h, segs[0]);
    world.run_until(SimTime::from_secs(36));
    world.segment(segs[0]).counters().tx_frames + world.segment(segs[1]).counters().tx_frames
        - before
}

fn vm_instructions_per_frame() -> (f64, u64) {
    let mut world = World::new(23);
    let segs = scenario::lans(&mut world, 2);
    let mut node = BridgeNode::new(
        "b",
        scenario::bridge_mac(0),
        scenario::bridge_ip(0),
        2,
        BridgeConfig::default(),
    );
    node.boot_load_native(active_bridge::loader::NAME);
    node.boot_load(active_bridge::switchlets::dumb_vm::build_image());
    let b = world.add_node(node);
    for &s in &segs {
        world.attach(b, s);
    }
    let count = 200;
    let h = world.add_node(HostNode::new(
        "h",
        HostConfig::simple(host_mac(1), host_ip(1), HostCostModel::FREE),
        vec![BlastApp::new(
            PortId(0),
            host_mac(2),
            512,
            count,
            SimDuration::from_ms(2),
        )],
    ));
    world.attach(h, segs[0]);
    let sink = world.add_node(HostNode::new(
        "s",
        HostConfig::simple(host_mac(2), host_ip(2), HostCostModel::FREE),
        vec![],
    ));
    world.attach(sink, segs[1]);
    world.run_until(SimTime::from_secs(2));
    let instr = world.node::<BridgeNode>(b).vm_instructions;
    (instr as f64 / count as f64, instr)
}

/// A straight-line module with `n` arithmetic instructions.
fn straightline_module(n: usize) -> switchlet::Module {
    let mut mb = ModuleBuilder::new("straight");
    let mut f = mb.func("f", vec![], Ty::Int);
    f.op(Op::ConstInt(1));
    for _ in 0..n {
        f.op(Op::ConstInt(3));
        f.op(Op::Add);
    }
    f.op(Op::Return);
    let idx = mb.finish(f);
    mb.export("f", idx);
    mb.build()
}

fn print_ablations() {
    println!("\n=== Ablations ===");
    let dumb = bystander_traffic(false);
    let learn = bystander_traffic(true);
    println!(
        "{}",
        table::render(
            &["ablation", "configuration", "result"],
            &[
                vec![
                    "learning".into(),
                    "dumb flood".into(),
                    format!("{dumb} frames on bystander LAN"),
                ],
                vec![
                    "learning".into(),
                    "self-learning".into(),
                    format!("{learn} frames on bystander LAN"),
                ],
            ]
        )
    );
    let no_stp = loop_frames(false);
    let stp = loop_frames(true);
    println!(
        "{}",
        table::render(
            &["ablation", "configuration", "result"],
            &[
                vec![
                    "spanning tree".into(),
                    "off (loop!)".into(),
                    format!("{no_stp} wire frames from ONE broadcast in 1 s"),
                ],
                vec![
                    "spanning tree".into(),
                    "802.1D on".into(),
                    format!("{stp} wire frames (loop broken)"),
                ],
            ]
        )
    );
    let native = run_ttcp(Forwarder::Bridge, 8192, 1_000_000, 24);
    let vm = run_ttcp(Forwarder::VmBridge, 8192, 1_000_000, 24);
    let (per_frame, _) = vm_instructions_per_frame();
    println!(
        "{}",
        table::render(
            &["ablation", "configuration", "result"],
            &[
                vec![
                    "data plane".into(),
                    "native learning switchlet".into(),
                    format!("{:.1} Mb/s", native.mbps),
                ],
                vec![
                    "data plane".into(),
                    "VM bytecode switchlet".into(),
                    format!(
                        "{:.1} Mb/s (modelled cost identical; {per_frame:.0} VM instr/frame measured)",
                        vm.mbps
                    ),
                ],
            ]
        )
    );
}

fn bench(c: &mut Criterion) {
    print_ablations();
    let mut g = c.benchmark_group("ablations");
    g.sample_size(10);
    for n in [10usize, 100, 1000, 10_000] {
        let module = straightline_module(n);
        g.bench_function(format!("verify_{n}_ops"), |b| {
            b.iter(|| verify_module(&module).unwrap())
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
