//! Figure 5 — the seven-step packet path through the active node, with
//! the modelled per-step cost at three frame sizes.

use ab_bench::{fig5_walk, table};
use criterion::{criterion_group, criterion_main, Criterion};
use netsim::CostModel;

fn print_walk() {
    println!("\n=== Figure 5: path for a packet in the active node (us) ===");
    let sizes = [64usize, 1024, 1514];
    let walks: Vec<_> = sizes.iter().map(|&s| fig5_walk(s)).collect();
    let mut rows = Vec::new();
    for (w0, (w1, w2)) in walks[0].iter().zip(walks[1].iter().zip(&walks[2])).take(7) {
        rows.push(vec![
            format!("{}", w0.step),
            w0.what.to_string(),
            format!("{:.1}", w0.us),
            format!("{:.1}", w1.us),
            format!("{:.1}", w2.us),
        ]);
    }
    let model = CostModel::active_bridge_1997();
    rows.push(vec![
        "".into(),
        "total software path (steps 2-6)".into(),
        format!("{:.1}", model.service_time(64).as_micros_f64()),
        format!("{:.1}", model.service_time(1024).as_micros_f64()),
        format!("{:.1}", model.service_time(1514).as_micros_f64()),
    ]);
    println!(
        "{}",
        table::render(&["step", "what", "64B", "1024B", "1514B"], &rows)
    );
}

fn bench(c: &mut Criterion) {
    print_walk();
    let mut g = c.benchmark_group("fig05");
    g.bench_function("walk", |b| b.iter(|| fig5_walk(1024)));
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
