//! Figure 9 — ping latencies vs packet size, for the direct connection,
//! the C buffered repeater, and the active bridge.
//!
//! Prints the full figure series, then benchmarks one representative
//! simulation as the Criterion target.

use ab_bench::{run_ping, table, Forwarder};
use criterion::{criterion_group, criterion_main, Criterion};

const SIZES: [usize; 6] = [32, 256, 512, 1024, 2048, 4096];

fn print_figure() {
    println!("\n=== Figure 9: ping latencies (ms RTT, 20 echoes each) ===");
    let mut rows = Vec::new();
    for &size in &SIZES {
        let d = run_ping(Forwarder::Direct, size, 20, 9);
        let r = run_ping(Forwarder::Repeater, size, 20, 9);
        let b = run_ping(Forwarder::Bridge, size, 20, 9);
        rows.push(vec![
            size.to_string(),
            format!("{:.3}", d.avg_rtt_ms),
            format!("{:.3}", r.avg_rtt_ms),
            format!("{:.3}", b.avg_rtt_ms),
        ]);
    }
    println!(
        "{}",
        table::render(&["size(B)", "direct", "C repeater", "active bridge"], &rows)
    );
    println!("paper (Figure 9): direct < repeater < bridge at every size; the");
    println!("bridge's extra latency is the user-space crossing + interpretation.\n");
}

fn bench(c: &mut Criterion) {
    print_figure();
    let mut g = c.benchmark_group("fig09");
    g.sample_size(10);
    g.bench_function("bridge_ping_1024B_x20", |b| {
        b.iter(|| run_ping(Forwarder::Bridge, 1024, 20, 9))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
