//! Table 1 — the automatic protocol transition state machine, regenerated
//! with simulation timestamps for all three scenarios (pass, failed
//! tests, late old-protocol packets).

use ab_bench::{run_transition, TransitionMode};
use criterion::{criterion_group, criterion_main, Criterion};

fn print_run(title: &str, mode: TransitionMode) {
    println!("--- {title} ---");
    let r = run_transition(mode, 12);
    for b in &r.bridges {
        println!("{}:", b.name);
        if b.events.is_empty() {
            println!("  (never upgraded — kept speaking DEC)");
        }
        for (t, what) in &b.events {
            println!("  t={t:>9.3}s  {what}");
        }
        println!(
            "  final: IEEE={} DEC={} suppressed_dec_pkts={}",
            b.ieee_running, b.dec_running, b.dec_suppressed
        );
    }
    println!();
}

fn print_table() {
    println!("\n=== Table 1: automatic protocol transition ===");
    println!("(paper rows: load/start -> recv IEEE packet -> 30 s suppress ->");
    println!(" 60 s perform tests -> pass: terminate | fail: fallback)\n");
    print_run("tests pass: transition sticks", TransitionMode::Pass);
    print_run(
        "new protocol defective: tests fail, fall back",
        TransitionMode::FailTests,
    );
    print_run(
        "late DEC packets (one bridge never upgraded): fall back",
        TransitionMode::LateDec,
    );
}

fn bench(c: &mut Criterion) {
    print_table();
    let mut g = c.benchmark_group("tab1");
    g.sample_size(10);
    g.bench_function("transition_pass", |b| {
        b.iter(|| run_transition(TransitionMode::Pass, 12))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
