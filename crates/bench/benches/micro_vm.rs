//! Microbenchmarks of the switchlet substrate — the real CPU costs of
//! the pieces the paper charges to Caml: per-frame interpretation
//! (their 0.34–0.47 ms on a 166 MHz Pentium), verification, loading,
//! digesting, and the protocol engines.

use active_bridge::switchlets::dumb_vm;
use active_bridge::switchlets::stp::bpdu::{BridgeId, ConfigBpdu};
use active_bridge::switchlets::stp::engine::StpEngine;
use active_bridge::{DecisionCache, LearningTable, StpTimers, Verdict};
use criterion::{criterion_group, criterion_main, Criterion};
use ether::MacAddr;
use netsim::{PortId, SimDuration, SimTime};
use switchlet::{
    call, call_scratch, md5, verify_module, Env, ExecConfig, HostDispatch, HostModuleSig, Module,
    ModuleBuilder, Namespace, Op, Ty, Value, VmError, VmScratch,
};

/// Host stub for running the VM dumb bridge outside a real bridge node.
struct StubNet {
    sent: u64,
}

impl HostDispatch for StubNet {
    fn call(&mut self, module: &str, item: &str, args: Vec<Value>) -> Result<Value, VmError> {
        match (module, item) {
            ("unixnet", "num_ports") => Ok(Value::Int(2)),
            ("unixnet", "bind_out") => Ok(Value::handle("oport", args[0].as_int() as u64)),
            ("unixnet", "send_pkt_out") => {
                self.sent += 1;
                Ok(Value::Int(args[1].as_str().len() as i64))
            }
            ("func", "register_handler") => Ok(Value::Unit),
            ("log", "msg") => Ok(Value::Unit),
            other => Err(VmError::HostUnavailable(format!("{other:?}"))),
        }
    }
}

fn stub_env() -> Env {
    let mut env = Env::new();
    env.add_module(
        HostModuleSig::new("unixnet")
            .func("num_ports", Ty::func(vec![], Ty::Int))
            .func("bind_out", Ty::func(vec![Ty::Int], Ty::named("oport")))
            .func(
                "send_pkt_out",
                Ty::func(vec![Ty::named("oport"), Ty::Str], Ty::Int),
            ),
    );
    env.add_module(HostModuleSig::new("func").func(
        "register_handler",
        Ty::func(
            vec![Ty::Str, Ty::func(vec![Ty::Str, Ty::Int], Ty::Unit)],
            Ty::Unit,
        ),
    ));
    env.add_module(HostModuleSig::new("log").func("msg", Ty::func(vec![Ty::Str], Ty::Unit)));
    env
}

fn bench(c: &mut Criterion) {
    let image = dumb_vm::build_image();
    let module = Module::decode(&image).unwrap();

    c.bench_function("md5_1KiB", |b| {
        let data = vec![0xA5u8; 1024];
        b.iter(|| md5(&data))
    });

    c.bench_function("module_decode", |b| {
        b.iter(|| Module::decode(&image).unwrap())
    });

    c.bench_function("verify_dumb_vm_module", |b| {
        b.iter(|| verify_module(&module).unwrap())
    });

    c.bench_function("link_dumb_vm_module", |b| {
        b.iter(|| {
            let mut ns = Namespace::new(stub_env());
            ns.load(&image).unwrap()
        })
    });

    // Per-frame interpreted forwarding — the analogue of the paper's
    // "cost per frame within Caml".
    {
        let mut ns = Namespace::new(stub_env());
        ns.load(&image).unwrap();
        let (handler, _) = ns.lookup_export("vm_dumb", "switching").unwrap();
        let frame = vec![0u8; 1024];
        let mut host = StubNet { sent: 0 };
        c.bench_function("vm_dumb_forward_1024B_frame", |b| {
            b.iter(|| {
                call(
                    &ns,
                    &mut host,
                    handler,
                    vec![Value::str(frame.clone()), Value::Int(0)],
                    &ExecConfig::default(),
                )
                .unwrap()
            })
        });
    }

    c.bench_function("stp_engine_on_config", |b| {
        let (mut engine, _) = StpEngine::new(
            BridgeId::new(0x8000, MacAddr::local(2)),
            2,
            100,
            StpTimers::default(),
            SimTime::ZERO,
        );
        let cfg = ConfigBpdu {
            root: BridgeId::new(0x8000, MacAddr::local(1)),
            root_cost: 100,
            bridge: BridgeId::new(0x8000, MacAddr::local(1)),
            port: 1,
            message_age: 0,
            max_age: 20,
            hello_time: 2,
            forward_delay: 15,
            tc: false,
            tca: false,
        };
        let mut t = 0u64;
        b.iter(|| {
            t += 1;
            engine.on_config(0, &cfg, SimTime::from_ms(t))
        })
    });

    c.bench_function("learning_table_learn_lookup", |b| {
        let mut table = LearningTable::new(SimDuration::from_secs(300));
        let mut i = 0u32;
        b.iter(|| {
            i = i.wrapping_add(1);
            let mac = MacAddr::local(i % 512);
            table.learn(mac, PortId((i % 2) as usize), SimTime::from_ms(i as u64));
            table.lookup(mac, SimTime::from_ms(i as u64))
        })
    });

    // ------------------------------------------------ PR 4 execution plane

    // The pre-decoded VM's dispatch loop: a pure arithmetic countdown
    // (sum of 1..=100) dominated by the fused LocalGet/LocalGet/Add,
    // LocalGet/ConstInt/Add and compare+branch superinstructions —
    // ~600 retired source ops per invocation, zero host calls, zero
    // steady-state allocation (arena reuse).
    {
        let mut mb = ModuleBuilder::new("loops");
        let mut f = mb.func("sum", vec![Ty::Int], Ty::Int);
        let acc = f.local(Ty::Int);
        let i = f.local(Ty::Int);
        f.op(Op::ConstInt(0)).op(Op::LocalSet(acc));
        f.op(Op::ConstInt(0)).op(Op::LocalSet(i));
        let head = f.new_label();
        let exit = f.new_label();
        f.place(head);
        f.op(Op::LocalGet(i)).op(Op::LocalGet(0)).op(Op::Ge);
        f.br_if(exit);
        f.op(Op::LocalGet(acc)).op(Op::LocalGet(i)).op(Op::Add);
        f.op(Op::LocalSet(acc));
        f.op(Op::LocalGet(i)).op(Op::ConstInt(1)).op(Op::Add);
        f.op(Op::LocalSet(i));
        f.jump(head);
        f.place(exit);
        f.op(Op::LocalGet(acc)).op(Op::Return);
        let idx = mb.finish(f);
        mb.export("sum", idx);
        let image = mb.build().encode();
        let mut ns = Namespace::new(Env::new());
        ns.load(&image).unwrap();
        let (fv, _) = ns.lookup_export("loops", "sum").unwrap();
        let mut scratch = VmScratch::new();
        c.bench_function("vm_dispatch_loop_100_iters", |b| {
            b.iter(|| {
                call_scratch(
                    &ns,
                    &mut switchlet::NoHost,
                    fv,
                    vec![Value::Int(100)],
                    &ExecConfig::default(),
                    &mut scratch,
                )
                .unwrap()
            })
        });
    }

    // Slot-indexed host dispatch: a loop making one host call per
    // iteration (50 calls per invocation) — measures the per-call cost of
    // the integer-slot boundary (no name lookup, no argument Vec).
    {
        let mut mb = ModuleBuilder::new("hostcalls");
        let imp = mb.import("unixnet", "num_ports", Ty::func(vec![], Ty::Int));
        let mut f = mb.func("go", vec![Ty::Int], Ty::Int);
        let acc = f.local(Ty::Int);
        let i = f.local(Ty::Int);
        f.op(Op::ConstInt(0)).op(Op::LocalSet(acc));
        f.op(Op::ConstInt(0)).op(Op::LocalSet(i));
        let head = f.new_label();
        let exit = f.new_label();
        f.place(head);
        f.op(Op::LocalGet(i)).op(Op::LocalGet(0)).op(Op::Ge);
        f.br_if(exit);
        f.op(Op::LocalGet(acc)).op(Op::CallImport(imp)).op(Op::Add);
        f.op(Op::LocalSet(acc));
        f.op(Op::LocalGet(i)).op(Op::ConstInt(1)).op(Op::Add);
        f.op(Op::LocalSet(i));
        f.jump(head);
        f.place(exit);
        f.op(Op::LocalGet(acc)).op(Op::Return);
        let idx = mb.finish(f);
        mb.export("go", idx);
        let image = mb.build().encode();
        let mut ns = Namespace::new(stub_env());
        ns.load(&image).unwrap();
        let (fv, _) = ns.lookup_export("hostcalls", "go").unwrap();
        let mut host = StubNet { sent: 0 };
        let mut scratch = VmScratch::new();
        c.bench_function("vm_host_call_50_calls", |b| {
            b.iter(|| {
                call_scratch(
                    &ns,
                    &mut host,
                    fv,
                    vec![Value::Int(50)],
                    &ExecConfig::default(),
                    &mut scratch,
                )
                .unwrap()
            })
        });
    }

    // Forwarding decision cache: the per-frame probe on a hit (steady
    // unicast flow) and on a miss (generation just bumped).
    {
        let mut cache = DecisionCache::default();
        let (src, dst) = (MacAddr::local(1), MacAddr::local(2));
        let now = SimTime::from_ms(1);
        cache.store(
            PortId(0),
            src,
            dst,
            7,
            SimTime::MAX,
            Verdict::Direct(PortId(1)),
        );
        c.bench_function("fwd_cache_hit", |b| {
            b.iter(|| cache.probe(PortId(0), src, dst, 7, now))
        });
        c.bench_function("fwd_cache_miss_store", |b| {
            let mut gen = 8u64;
            b.iter(|| {
                gen += 1; // stale generation: probe misses, verdict re-stored
                let miss = cache.probe(PortId(0), src, dst, gen, now);
                cache.store(PortId(0), src, dst, gen, SimTime::MAX, Verdict::Flood);
                miss
            })
        });
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
