//! Section 7.3's frame-rate table: measured frames/second through the
//! active bridge during ttcp, plus the "limiting rate" the cost model's
//! per-frame cost alone would allow (the paper's 0.47 ms ⇒ 2100 f/s
//! arithmetic).

use ab_bench::{run_ttcp, table, Forwarder};
use criterion::{criterion_group, criterion_main, Criterion};
use netsim::CostModel;

fn print_table() {
    println!("\n=== Section 7.3: frame rates through the active bridge ===");
    let model = CostModel::active_bridge_1997();
    let mut rows = Vec::new();
    for &(write, label) in &[
        (50usize, "~50"),
        (512, "512"),
        (1024, "1024"),
        (8192, "8192 (MSS frames)"),
    ] {
        let total = ((write as u64) * 400).clamp(40_000, 2_000_000);
        let s = run_ttcp(Forwarder::Bridge, write, total, 11);
        // Wire frame: write-sized payload + TcpLite/IP/Ethernet headers
        // (MSS-capped for large writes).
        let frame = write.min(1462) + 18 + 20 + 14;
        rows.push(vec![
            label.to_string(),
            format!("{:.0}", s.frames_per_sec),
            format!("{:.0}", model.limiting_frame_rate(frame)),
            format!("{:.2}", s.mbps),
        ]);
    }
    println!(
        "{}",
        table::render(
            &["write(B)", "measured f/s", "bridge-limit f/s", "Mb/s"],
            &rows
        )
    );
    println!("paper: ~360 f/s at ~50 B rising to ~1790 f/s at 1024 B; a ~2100 f/s");
    println!("ceiling from the interpreted per-frame cost alone.\n");
}

fn bench(c: &mut Criterion) {
    print_table();
    let mut g = c.benchmark_group("tab_fps");
    g.sample_size(10);
    g.bench_function("bridge_ttcp_1024B", |b| {
        b.iter(|| run_ttcp(Forwarder::Bridge, 1024, 400_000, 11))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
