//! Microbenchmarks of the simulator's event queue, exercised through the
//! `World` API: future-dated timer churn through the binary heap,
//! zero-delay timer chains through the same-instant fast lane, and
//! broadcast fan-out through the batched delivery path.

use criterion::{criterion_group, criterion_main, Criterion};
use netsim::{Ctx, FrameBuf, Node, PortId, SegmentConfig, SimDuration, SimTime, TimerToken, World};

/// Schedules `pending` timers up front, then reschedules each as it
/// fires — a steady state of heap pushes and pops at many distinct
/// timestamps.
struct TimerChurn {
    pending: u64,
    fired: u64,
    limit: u64,
}

impl Node for TimerChurn {
    fn name(&self) -> &str {
        "churn"
    }
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        for i in 0..self.pending {
            ctx.schedule(SimDuration::from_us(1 + i * 7), TimerToken(i));
        }
    }
    fn on_frame(&mut self, _: &mut Ctx<'_>, _: PortId, _: FrameBuf) {}
    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: TimerToken) {
        self.fired += 1;
        if self.fired < self.limit {
            // Re-arm at a spread of future offsets to keep the heap busy.
            ctx.schedule(SimDuration::from_us(1 + (token.0 % 97) * 11), token);
        }
    }
    fn as_any(&self) -> &dyn core::any::Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn core::any::Any {
        self
    }
}

/// Chains zero-delay timers: every firing schedules the next at the same
/// instant, which exercises the queue's now-lane fast path.
struct ZeroChain {
    fired: u64,
    limit: u64,
}

impl Node for ZeroChain {
    fn name(&self) -> &str {
        "zero-chain"
    }
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        ctx.schedule(SimDuration::from_ns(0), TimerToken(0));
    }
    fn on_frame(&mut self, _: &mut Ctx<'_>, _: PortId, _: FrameBuf) {}
    fn on_timer(&mut self, ctx: &mut Ctx<'_>, _: TimerToken) {
        self.fired += 1;
        if self.fired < self.limit {
            ctx.schedule(SimDuration::from_ns(0), TimerToken(0));
        }
    }
    fn as_any(&self) -> &dyn core::any::Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn core::any::Any {
        self
    }
}

/// One talker, many listeners on a shared segment: the batched
/// `DeliverAll` path with a shared `FrameBuf`.
struct Talker {
    frame: FrameBuf,
    sent: u64,
    limit: u64,
}

impl Node for Talker {
    fn name(&self) -> &str {
        "talker"
    }
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        ctx.schedule(SimDuration::from_us(200), TimerToken(0));
    }
    fn on_frame(&mut self, _: &mut Ctx<'_>, _: PortId, _: FrameBuf) {}
    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: TimerToken) {
        if self.sent < self.limit {
            ctx.send(PortId(0), self.frame.clone());
            self.sent += 1;
            ctx.schedule(SimDuration::from_us(200), token);
        }
    }
    fn as_any(&self) -> &dyn core::any::Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn core::any::Any {
        self
    }
}

struct Sink(u64);

impl Node for Sink {
    fn name(&self) -> &str {
        "sink"
    }
    fn on_frame(&mut self, _: &mut Ctx<'_>, _: PortId, _: FrameBuf) {
        self.0 += 1;
    }
    fn as_any(&self) -> &dyn core::any::Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn core::any::Any {
        self
    }
}

fn bench_timer_churn(c: &mut Criterion) {
    c.bench_function("micro_event_queue/timer_churn_10k", |b| {
        b.iter(|| {
            let mut world = World::new(1);
            world.trace_mut().set_enabled(false);
            world.add_node(TimerChurn {
                pending: 256,
                fired: 0,
                limit: 10_000,
            });
            world.run_until(SimTime::from_secs(600));
            world.now()
        })
    });
}

fn bench_zero_chain(c: &mut Criterion) {
    c.bench_function("micro_event_queue/now_lane_chain_10k", |b| {
        b.iter(|| {
            let mut world = World::new(1);
            world.trace_mut().set_enabled(false);
            world.add_node(ZeroChain {
                fired: 0,
                limit: 10_000,
            });
            world.run_until(SimTime::from_secs(1));
            world.now()
        })
    });
}

fn bench_broadcast_fanout(c: &mut Criterion) {
    c.bench_function("micro_event_queue/broadcast_fanout_32x500", |b| {
        b.iter(|| {
            let mut world = World::new(1);
            world.trace_mut().set_enabled(false);
            let lan = world.add_segment(SegmentConfig::default());
            let t = world.add_node(Talker {
                frame: FrameBuf::from(vec![0x42u8; 1400]),
                sent: 0,
                limit: 500,
            });
            world.attach(t, lan);
            for _ in 0..32 {
                let s = world.add_node(Sink(0));
                world.attach(s, lan);
            }
            world.run_until(SimTime::from_secs(10));
            world.frames_delivered()
        })
    });
}

criterion_group!(
    benches,
    bench_timer_churn,
    bench_zero_chain,
    bench_broadcast_fanout
);
criterion_main!(benches);
