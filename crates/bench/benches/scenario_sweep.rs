//! Scenario-runner throughput: how fast the harness itself can sweep
//! `(topology, workload, seed)` triples — the number every future
//! scaling/perf PR sweeps against — plus a verdict table for the default
//! sweep.

use ab_scenario::runner::{self, Scenario};
use ab_scenario::sweep::{run_sweep, SweepSpec};
use ab_scenario::topo::TopologyShape;
use ab_scenario::workload::BatteryKind;
use criterion::{criterion_group, criterion_main, Criterion};

fn print_table() {
    println!("\n=== scenario sweep: default battery ===");
    println!(
        "{:<26} {:>7} {:>8} {:>8} {:>9} {:>6}",
        "scenario", "cyclic", "frames", "quiet", "verdicts", "pass"
    );
    let report = run_sweep(&SweepSpec::default_sweep(1));
    for r in &report.runs {
        let (p, f, w) = r.verdict_counts();
        println!(
            "{:<26} {:>7} {:>8} {:>8} {:>9} {:>6}",
            r.scenario.name,
            r.cyclic,
            r.world.total_tx_frames(),
            r.quiet_tx,
            format!("{p}P/{f}F/{w}W"),
            r.passed()
        );
    }
    let (p, f, w) = report.verdict_counts();
    println!(
        "sweep: {} scenarios, invariants {p} pass / {f} fail / {w} waived, overall pass={}\n",
        report.runs.len(),
        report.passed()
    );
}

fn bench(c: &mut Criterion) {
    print_table();
    let mut g = c.benchmark_group("scenario");
    g.sample_size(10);
    // One loop-free and one STP scenario: the harness cost with and
    // without the 40-second convergence epoch.
    let star = Scenario::new(TopologyShape::Star { arms: 3 }, BatteryKind::Streams, 5);
    g.bench_function("star_streams_run", |b| b.iter(|| runner::run(&star)));
    let mesh = Scenario::new(
        TopologyShape::FullMesh { segments: 3 },
        BatteryKind::Pings,
        5,
    );
    g.bench_function("mesh_pings_run", |b| b.iter(|| runner::run(&mesh)));
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
