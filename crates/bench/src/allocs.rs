//! Heap-allocation accounting for the baseline harness.
//!
//! [`CountingAlloc`] wraps the system allocator and counts every
//! `alloc`/`realloc` call (and the bytes requested). The counters are
//! process-global atomics, so the wrapper only observes anything when a
//! binary installs it:
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: ab_bench::allocs::CountingAlloc = ab_bench::allocs::CountingAlloc;
//! ```
//!
//! The `bench_baseline` binary does exactly that; library users (criterion
//! benches, tests) that don't install it simply read zeros, and
//! [`counting_enabled`] tells the two cases apart.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);
static ALLOC_BYTES: AtomicU64 = AtomicU64::new(0);

/// A [`System`] wrapper that counts allocation calls and requested bytes.
pub struct CountingAlloc;

// SAFETY: defers every operation to `System`; the counters are plain
// atomics and never touch the allocator's own state.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Relaxed);
        ALLOC_BYTES.fetch_add(layout.size() as u64, Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Relaxed);
        ALLOC_BYTES.fetch_add(layout.size() as u64, Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Relaxed);
        ALLOC_BYTES.fetch_add(new_size as u64, Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

/// Allocation calls observed so far (0 unless [`CountingAlloc`] is the
/// installed global allocator).
pub fn alloc_calls() -> u64 {
    ALLOC_CALLS.load(Relaxed)
}

/// Bytes requested so far across all counted calls.
pub fn alloc_bytes() -> u64 {
    ALLOC_BYTES.load(Relaxed)
}

/// Whether the counting allocator is actually installed in this process
/// (detected by making a heap allocation and watching the counter move).
pub fn counting_enabled() -> bool {
    let before = alloc_calls();
    let probe = std::hint::black_box(Vec::<u64>::with_capacity(16));
    drop(std::hint::black_box(probe));
    alloc_calls() != before
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_read_without_installation() {
        // In the test binary the counting allocator is not installed, so
        // the counters must simply read as stable zeros.
        assert!(!counting_enabled());
        assert_eq!(alloc_calls(), 0);
        assert_eq!(alloc_bytes(), 0);
    }
}
