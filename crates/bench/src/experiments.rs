//! Experiment runners: one per paper artefact.

use ab_scenario::{self as scenario, bridge_ip, host_ip, host_mac};
use active_bridge::switchlets::stp::{DEC_NAME, IEEE_NAME};
use active_bridge::{
    BridgeConfig, BridgeNode, ControlSwitchlet, Defect, NativeSwitchlet, Phase, StpSwitchlet,
};
use hostsim::{
    App, HostConfig, HostCostModel, HostNode, PingApp, ProbeApp, RepeaterNode, TtcpRecvApp,
    TtcpSendApp, UploadApp,
};
use netsim::{CostModel, NodeId, PortId, SegmentConfig, SimDuration, SimTime, World};
use netstack::tcplite::{ReceiverConfig, SenderConfig};

/// What sits between the two measurement hosts.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Forwarder {
    /// Hosts share one LAN (the paper's Figure 8 baseline).
    Direct,
    /// The user-mode C buffered repeater.
    Repeater,
    /// The active bridge with the native learning switchlet.
    Bridge,
    /// The active bridge with the *bytecode* dumb switchlet on the data
    /// path (every frame interpreted by the VM).
    VmBridge,
}

impl Forwarder {
    /// Display label (matches the paper's figure legends).
    pub fn label(self) -> &'static str {
        match self {
            Forwarder::Direct => "direct connection",
            Forwarder::Repeater => "C buffered repeater",
            Forwarder::Bridge => "Active bridge",
            Forwarder::VmBridge => "Active bridge (VM data path)",
        }
    }
}

/// A built two-host path.
pub struct Path {
    /// The world.
    pub world: World,
    /// Sender/client host.
    pub host_a: NodeId,
    /// Receiver/server host.
    pub host_b: NodeId,
    /// The middlebox, if any.
    pub middle: Option<NodeId>,
}

/// Build the measurement path with the given apps on each host.
pub fn build_path(fwd: Forwarder, seed: u64, apps_a: Vec<App>, apps_b: Vec<App>) -> Path {
    let mut world = World::new(seed);
    world.trace_mut().set_enabled(false);
    let cost = HostCostModel::pc_1997();
    let (seg_a, seg_b, middle) = match fwd {
        Forwarder::Direct => {
            let lan = world.add_segment(SegmentConfig::named("lan0"));
            (lan, lan, None)
        }
        Forwarder::Repeater => {
            let lan0 = world.add_segment(SegmentConfig::named("lan0"));
            let lan1 = world.add_segment(SegmentConfig::named("lan1"));
            let rep = world.add_node(RepeaterNode::new("repeater", CostModel::c_repeater_1997()));
            world.attach(rep, lan0);
            world.attach(rep, lan1);
            (lan0, lan1, Some(rep))
        }
        Forwarder::Bridge => {
            let lan0 = world.add_segment(SegmentConfig::named("lan0"));
            let lan1 = world.add_segment(SegmentConfig::named("lan1"));
            let b = scenario::bridge(
                &mut world,
                0,
                &[lan0, lan1],
                BridgeConfig::default(),
                &["bridge_dumb", "bridge_learning"],
            );
            (lan0, lan1, Some(b))
        }
        Forwarder::VmBridge => {
            let lan0 = world.add_segment(SegmentConfig::named("lan0"));
            let lan1 = world.add_segment(SegmentConfig::named("lan1"));
            let mut node = BridgeNode::new(
                "bridge0",
                scenario::bridge_mac(0),
                bridge_ip(0),
                2,
                BridgeConfig::default(),
            );
            node.boot_load_native(active_bridge::loader::NAME);
            node.boot_load(active_bridge::switchlets::dumb_vm::build_image());
            let b = world.add_node(node);
            world.attach(b, lan0);
            world.attach(b, lan1);
            (lan0, lan1, Some(b))
        }
    };
    let host_a = world.add_node(HostNode::new(
        "hostA",
        HostConfig::simple(host_mac(1), host_ip(1), cost),
        apps_a,
    ));
    world.attach(host_a, seg_a);
    let host_b = world.add_node(HostNode::new(
        "hostB",
        HostConfig::simple(host_mac(2), host_ip(2), cost),
        apps_b,
    ));
    world.attach(host_b, seg_b);
    Path {
        world,
        host_a,
        host_b,
        middle,
    }
}

/// Run the world in slices until `done` or `horizon`.
pub fn run_until_done(world: &mut World, horizon: SimTime, mut done: impl FnMut(&World) -> bool) {
    world.start();
    while world.now() < horizon {
        world.run_for(SimDuration::from_ms(50));
        if done(world) {
            return;
        }
    }
}

// ------------------------------------------------------------- Figure 9

/// One Figure 9 data point.
#[derive(Clone, Debug)]
pub struct PingStats {
    /// ICMP payload bytes.
    pub size: usize,
    /// Replies / requests.
    pub received: u32,
    /// Requests sent.
    pub sent: u32,
    /// Mean RTT in milliseconds.
    pub avg_rtt_ms: f64,
    /// Minimum RTT in milliseconds.
    pub min_rtt_ms: f64,
    /// Maximum RTT in milliseconds.
    pub max_rtt_ms: f64,
}

/// Figure 9: `ping` RTT for `size`-byte payloads across `fwd`.
pub fn run_ping(fwd: Forwarder, size: usize, count: u32, seed: u64) -> PingStats {
    let apps_a = vec![PingApp::new(
        PortId(0),
        host_ip(2),
        count,
        size,
        SimDuration::from_ms(100),
        0x7070,
    )];
    let mut path = build_path(fwd, seed, apps_a, vec![]);
    let host_a = path.host_a;
    run_until_done(&mut path.world, SimTime::from_secs(120), |w| {
        let App::Ping(p) = w.node::<HostNode>(host_a).app(0) else {
            unreachable!()
        };
        p.done_at.is_some()
    });
    let App::Ping(p) = path.world.node::<HostNode>(host_a).app(0) else {
        unreachable!()
    };
    let ms = |d: &SimDuration| d.as_millis_f64();
    PingStats {
        size,
        received: p.received,
        sent: p.sent,
        avg_rtt_ms: p.avg_rtt().as_ref().map(ms).unwrap_or(f64::NAN),
        min_rtt_ms: p.rtts.iter().min().map(&ms).unwrap_or(f64::NAN),
        max_rtt_ms: p.rtts.iter().max().map(ms).unwrap_or(f64::NAN),
    }
}

// ------------------------------------------------------------ Figure 10

/// One Figure 10 / frame-rate-table data point.
#[derive(Clone, Debug)]
pub struct TtcpStats {
    /// Application write size (the x-axis "packet size").
    pub write_size: usize,
    /// Bytes moved.
    pub total_bytes: u64,
    /// Transfer time in seconds.
    pub secs: f64,
    /// Goodput in Mb/s.
    pub mbps: f64,
    /// Data frames per second on the wire.
    pub frames_per_sec: f64,
    /// Data frames sent (including retransmissions).
    pub frames: u64,
    /// True if the transfer completed before the horizon.
    pub completed: bool,
}

/// Figure 10: a ttcp transfer of `total_bytes` in `write_size` chunks.
pub fn run_ttcp(fwd: Forwarder, write_size: usize, total_bytes: u64, seed: u64) -> TtcpStats {
    let sender_cfg = SenderConfig::default();
    let apps_a = vec![TtcpSendApp::new(
        PortId(0),
        host_ip(2),
        5001,
        5001,
        total_bytes,
        write_size,
        sender_cfg,
    )];
    let apps_b = vec![TtcpRecvApp::new(5001, ReceiverConfig::default())];
    let mut path = build_path(fwd, seed, apps_a, apps_b);
    let host_a = path.host_a;
    run_until_done(&mut path.world, SimTime::from_secs(600), |w| {
        let App::TtcpSend(t) = w.node::<HostNode>(host_a).app(0) else {
            unreachable!()
        };
        t.is_done()
    });
    let App::TtcpSend(t) = path.world.node::<HostNode>(host_a).app(0) else {
        unreachable!()
    };
    let secs = match (t.started_at, t.done_at) {
        (Some(s), Some(e)) => e.saturating_since(s).as_secs_f64(),
        _ => path.world.now().as_secs_f64(),
    };
    TtcpStats {
        write_size,
        total_bytes,
        secs,
        mbps: total_bytes as f64 * 8.0 / secs / 1e6,
        frames_per_sec: t.frames_sent as f64 / secs,
        frames: t.frames_sent,
        completed: t.is_done(),
    }
}

// -------------------------------------------------------------- Table 1

/// Which transition scenario to run.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum TransitionMode {
    /// Correct new protocol: tests pass, control terminates.
    Pass,
    /// Defective new protocol (inverted election): tests fail, fallback.
    FailTests,
    /// One bridge never upgrades: late DEC packets force fallback.
    LateDec,
}

/// Per-bridge transition outcome.
#[derive(Clone, Debug)]
pub struct BridgeOutcome {
    /// Bridge name.
    pub name: String,
    /// Final control phase (None if the bridge ran no control switchlet).
    pub phase: Option<Phase>,
    /// The recorded Table 1 event rows `(t_seconds, what)`.
    pub events: Vec<(f64, String)>,
    /// DEC packets suppressed during the window.
    pub dec_suppressed: u64,
    /// Is the IEEE protocol running at the end?
    pub ieee_running: bool,
    /// Is the DEC protocol running at the end?
    pub dec_running: bool,
}

/// Result of a transition run.
#[derive(Clone, Debug)]
pub struct TransitionReport {
    /// Per-bridge outcomes.
    pub bridges: Vec<BridgeOutcome>,
    /// When the probe injected the triggering IEEE BPDU (s).
    pub injected_at_s: f64,
}

/// The Table 1 experiment: a line of three bridges running the DEC-style
/// protocol, 802.1D loaded dormant, control switchlets armed; a probe
/// injects an 802.1D BPDU once the network is stable.
pub fn run_transition(mode: TransitionMode, seed: u64) -> TransitionReport {
    let mut world = World::new(seed);
    world.trace_mut().set_enabled(true);
    let cfg = BridgeConfig::default();
    let n = 3;
    let segs = scenario::lans(&mut world, n + 1);
    let mut bridges = Vec::new();
    for i in 0..n {
        let upgraded = !(mode == TransitionMode::LateDec && i == n - 1);
        let mut node = BridgeNode::new(
            format!("bridge{i}"),
            scenario::bridge_mac(i as u32),
            bridge_ip(i as u32),
            2,
            cfg.clone(),
        );
        if mode == TransitionMode::FailTests {
            // The "bug in the new protocol implementation".
            node.register_factory(
                IEEE_NAME,
                Box::new(|_| {
                    Box::new(StpSwitchlet::ieee().with_defect(Defect::InvertedElection))
                        as Box<dyn NativeSwitchlet>
                }),
            );
        }
        node.boot_load_native(active_bridge::loader::NAME);
        node.boot_load_native("bridge_learning");
        node.boot_load_native(DEC_NAME);
        if upgraded {
            node.boot_load_native(IEEE_NAME); // installs dormant
            node.boot_load_native("control");
        }
        let id = world.add_node(node);
        world.attach(id, segs[i]);
        world.attach(id, segs[i + 1]);
        bridges.push(id);
    }
    // The probe: eth0 on the first LAN, eth1 on the last.
    let probe_cfg = HostConfig {
        macs: vec![host_mac(10), host_mac(11)],
        ips: vec![host_ip(10), host_ip(11)],
        cost: HostCostModel::pc_1997(),
        promiscuous: true,
        arp_hint: 0,
    };
    let inject_at = SimTime::from_secs(60);
    let probe = world.add_node(HostNode::new(
        "probe",
        probe_cfg,
        vec![ProbeApp::new_delayed(0x9A9A, SimDuration::from_secs(60))],
    ));
    world.attach(probe, segs[0]);
    world.attach(probe, segs[n]);

    // Let DEC converge, inject, then run past the 60-second test mark.
    world.run_until(inject_at + SimDuration::from_secs(75));

    let outcomes = bridges
        .iter()
        .map(|&b| {
            let node = world.node::<BridgeNode>(b);
            let control = node.switchlet::<ControlSwitchlet>("control");
            BridgeOutcome {
                name: world.node_name(b).to_owned(),
                phase: control.map(|c| c.phase().clone()),
                events: control
                    .map(|c| {
                        c.events
                            .iter()
                            .map(|e| (e.at.as_secs_f64(), e.what.clone()))
                            .collect()
                    })
                    .unwrap_or_default(),
                dec_suppressed: control.map(|c| c.dec_suppressed).unwrap_or(0),
                ieee_running: node.plane().is_running(IEEE_NAME),
                dec_running: node.plane().is_running(DEC_NAME),
            }
        })
        .collect();
    TransitionReport {
        bridges: outcomes,
        injected_at_s: inject_at.as_secs_f64(),
    }
}

// ----------------------------------------------------------- Section 7.5

/// Section 7.5 agility result.
#[derive(Clone, Debug)]
pub struct AgilityStats {
    /// Start → IEEE BPDU on eth1 (seconds); the paper measured 0.056 s.
    pub to_ieee_s: Option<f64>,
    /// Start → first probe ping on eth1 (seconds); the paper: 30.1 s.
    pub to_ping_s: Option<f64>,
    /// Pings sent before one arrived.
    pub pings_sent: u32,
}

/// The ring agility experiment: three bridges between the probe's two
/// interfaces; measure protocol switch-over and re-forwarding delay.
pub fn run_agility(seed: u64) -> AgilityStats {
    let mut world = World::new(seed);
    world.trace_mut().set_enabled(false);
    let cfg = BridgeConfig::default();
    let n = 3;
    let segs = scenario::lans(&mut world, n + 1);
    for i in 0..n {
        let b = scenario::bridge(
            &mut world,
            i as u32,
            &[segs[i], segs[i + 1]],
            cfg.clone(),
            &["bridge_learning", DEC_NAME, IEEE_NAME, "control"],
        );
        let _ = b;
    }
    let probe_cfg = HostConfig {
        macs: vec![host_mac(10), host_mac(11)],
        ips: vec![host_ip(10), host_ip(11)],
        cost: HostCostModel::pc_1997(),
        promiscuous: true,
        arp_hint: 0,
    };
    let probe = world.add_node(HostNode::new(
        "probe",
        probe_cfg,
        vec![ProbeApp::new_delayed(0x9B9B, SimDuration::from_secs(60))],
    ));
    world.attach(probe, segs[0]);
    world.attach(probe, segs[n]);

    let horizon = SimTime::from_secs(150);
    let probe_id = probe;
    run_until_done(&mut world, horizon, |w| {
        let App::Probe(p) = w.node::<HostNode>(probe_id).app(0) else {
            unreachable!()
        };
        p.ping_seen_at.is_some()
    });
    let App::Probe(p) = world.node::<HostNode>(probe_id).app(0) else {
        unreachable!()
    };
    AgilityStats {
        to_ieee_s: p.to_ieee().map(|d| d.as_secs_f64()),
        to_ping_s: p.to_ping().map(|d| d.as_secs_f64()),
        pings_sent: p.pings_sent,
    }
}

// -------------------------------------------------------------- Figure 5

/// One step of the Figure 5 packet path with its modelled cost.
#[derive(Clone, Debug)]
pub struct PathStep {
    /// Step number (1-7, per Figure 5).
    pub step: u8,
    /// Description.
    pub what: &'static str,
    /// Modelled time in microseconds (0 where the cost is folded into an
    /// adjacent step).
    pub us: f64,
}

/// The Figure 5 walk: decompose the bridge's per-frame cost for a frame
/// of `len` octets.
pub fn fig5_walk(len: usize) -> Vec<PathStep> {
    let cost = CostModel::active_bridge_1997();
    let kernel = cost.kernel_time(len).as_micros_f64();
    let proc = cost.processing_time(len).as_micros_f64();
    let wire = SimDuration::serialization(len + 24, 100_000_000).as_micros_f64();
    vec![
        PathStep {
            step: 1,
            what: "frame arrives on Ethernet adapter (serialization)",
            us: wire,
        },
        PathStep {
            step: 2,
            what: "Ethernet ISR collects frame into buffer chain",
            us: kernel * 0.25,
        },
        PathStep {
            step: 3,
            what: "kernel wakes bridge thread, recvfrom() copy",
            us: kernel * 0.35,
        },
        PathStep {
            step: 4,
            what: "the Caml program operates on the frame",
            us: proc,
        },
        PathStep {
            step: 5,
            what: "sendto() copies frame back to kernel",
            us: kernel * 0.25,
        },
        PathStep {
            step: 6,
            what: "kernel queues frame to Ethernet driver",
            us: kernel * 0.15,
        },
        PathStep {
            step: 7,
            what: "driver emits frame to destination LAN (serialization)",
            us: wire,
        },
    ]
}

/// Upload a switchlet image from host A to the bridge over TFTP and wait
/// for it to load; returns true on success. Used by the loading tests and
/// the quickstart example.
pub fn upload_and_load(world: &mut World, host: NodeId, app_idx: usize, horizon: SimTime) -> bool {
    run_until_done(world, horizon, |w| {
        let App::Upload(u) = w.node::<HostNode>(host).app(app_idx) else {
            unreachable!()
        };
        u.is_done() || u.failed.is_some()
    });
    let App::Upload(u) = world.node::<HostNode>(host).app(app_idx) else {
        unreachable!()
    };
    u.is_done()
}

/// Convenience: an [`UploadApp`] targeting bridge 0's loader.
pub fn uploader(image: Vec<u8>, filename: &str) -> App {
    UploadApp::new(PortId(0), bridge_ip(0), 1069, filename, image)
}
