//! Plain-text table rendering for experiment output.

/// Render rows as an aligned plain-text table with a header.
pub fn render(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let line = |out: &mut String, cells: &[String]| {
        for (i, cell) in cells.iter().enumerate() {
            out.push_str(&format!("{:>width$}  ", cell, width = widths[i]));
        }
        out.push('\n');
    };
    line(
        &mut out,
        &headers.iter().map(|s| s.to_string()).collect::<Vec<_>>(),
    );
    let total: usize = widths.iter().sum::<usize>() + widths.len() * 2;
    out.push_str(&"-".repeat(total));
    out.push('\n');
    for row in rows {
        line(&mut out, row);
    }
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn renders_aligned() {
        let s = super::render(
            &["size", "Mb/s"],
            &[
                vec!["32".into(), "0.5".into()],
                vec!["8192".into(), "16.0".into()],
            ],
        );
        assert!(s.contains("size"));
        assert!(s.contains("8192"));
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
    }
}
