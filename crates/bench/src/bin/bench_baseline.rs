//! `bench_baseline` — measure the frame plane and the multi-core
//! execution plane, and emit `BENCH_PR5.json`.
//!
//! Two instrument sets:
//!
//! 1. **Per-case measurements** (serial, so the counting allocator's
//!    totals attribute exactly): four workloads × two topology sizes —
//!    broadcast, ttcp, pings, and the new ≥ 1024-host `metro` tier.
//! 2. **The scaling sweep**: the committed scenario sweep submitted
//!    through the `ab_scenario::exec` worker pool at 1, 2 and 4 jobs
//!    (clamped by `--jobs`), timing every job and the whole batch, and
//!    verifying the three reports render **byte-identically** — the
//!    determinism contract of the parallel execution plane.
//!
//! ```sh
//! cargo run --release -p ab_bench --bin bench_baseline -- [--smoke] \
//!     [--jobs N] [--out BENCH_PR5.json] [--assert-alloc-o1] \
//!     [--assert-ttcp-allocs 0.5] [--assert-vs-pr4 0.10] \
//!     [--assert-probe-overhead 0.02] [--assert-scaling 1.8]
//! ```
//!
//! * `--smoke` — CI-sized runs (a few seconds total);
//! * `--jobs N` — worker-thread budget for the scaling sweep (default:
//!   available parallelism; `1` keeps the whole binary single-threaded);
//! * `--out` — output path (default `BENCH_PR5.json`);
//! * `--assert-alloc-o1` — exit nonzero unless allocations per delivered
//!   frame stay O(1) in listener count (large broadcast must not
//!   allocate more per frame than small broadcast, within tolerance);
//! * `--assert-ttcp-allocs N` — exit nonzero if ttcp/large steady-state
//!   allocations per delivered frame exceed `N` (the metro tier is held
//!   to the same budget);
//! * `--assert-vs-pr4 TOL` — exit nonzero if any case's throughput,
//!   *normalized to the broadcast/large anchor of the same run*,
//!   regressed more than `TOL` versus the recorded PR 4 baseline
//!   (anchor normalization cancels machine speed);
//! * `--assert-probe-overhead TOL` — exit nonzero if any case's
//!   ns-per-frame, normalized to the same anchor, grew more than `TOL`
//!   versus the recorded **PR 5** baseline — the last recording taken
//!   before the flight-recorder hooks existed. These runs keep the
//!   probe disarmed, so the gate bounds the *disarmed* per-hook cost
//!   (one predictable branch each) to the noise floor;
//! * `--assert-scaling EFF` — exit nonzero if the 4-job sweep speedup
//!   falls below `EFF` — enforced only when the machine actually has
//!   ≥ 4 hardware threads (reported as `host_parallelism` either way).
//!   The byte-identity of the 1/2/4-job reports is asserted
//!   unconditionally whenever more than one job count runs.
//!
//! Every gate reads the **numeric** fields of the emitted JSON document
//! (`*_num`, `scaling.*`), not the display strings: the artifact is the
//! source of truth, and what CI checks is exactly what it uploads.

use std::time::Instant;

use ab_bench::allocs::{self, CountingAlloc};
use ab_bench::baseline::{self, case_json, run_case, CaseResult, CASES};
use ab_scenario::sweep::SweepSpec;
use ab_scenario::{runner, Json};
use netsim::World;

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// Allocations-per-frame headroom allowed between the small and large
/// broadcast topologies before the O(1) assertion fails, plus a small
/// absolute floor so a handful of constant allocations never trips the
/// ratio test. The floor sits far below one allocation per delivered
/// frame, so a regression to per-listener copying (≥ 1.0 allocs/frame,
/// as the pre-refactor plane measured) fails the gate outright.
const ALLOC_O1_RATIO: f64 = 1.5;
const ALLOC_O1_FLOOR: f64 = 0.1;

/// The case whose throughput serves as the machine-speed anchor for the
/// normalized PR 4 comparison.
const ANCHOR: &str = "broadcast/large";

/// The seed of the committed sweep the scaling section runs (the same
/// sweep CI renders and diffs via `examples/scenario_sweep.rs`).
const SWEEP_SEED: u64 = 42;

struct Args {
    smoke: bool,
    jobs: usize,
    out: String,
    assert_o1: bool,
    assert_ttcp_allocs: Option<f64>,
    assert_vs_pr4: Option<f64>,
    assert_probe_overhead: Option<f64>,
    assert_scaling: Option<f64>,
}

fn parse_args() -> Args {
    let mut parsed = Args {
        smoke: false,
        jobs: ab_scenario::default_jobs(),
        out: String::from("BENCH_PR5.json"),
        assert_o1: false,
        assert_ttcp_allocs: None,
        assert_vs_pr4: None,
        assert_probe_overhead: None,
        assert_scaling: None,
    };
    let mut args = std::env::args().skip(1);
    let num = |args: &mut dyn Iterator<Item = String>, flag: &str| -> f64 {
        args.next()
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| panic!("{flag} needs a number"))
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => parsed.smoke = true,
            "--jobs" => {
                let v = args.next().expect("--jobs needs a count");
                parsed.jobs = ab_scenario::parse_jobs(&v)
                    .unwrap_or_else(|| panic!("--jobs needs a positive integer or 'auto'"));
            }
            "--assert-alloc-o1" => parsed.assert_o1 = true,
            "--assert-ttcp-allocs" => {
                parsed.assert_ttcp_allocs = Some(num(&mut args, "--assert-ttcp-allocs"))
            }
            "--assert-vs-pr4" => parsed.assert_vs_pr4 = Some(num(&mut args, "--assert-vs-pr4")),
            "--assert-probe-overhead" => {
                parsed.assert_probe_overhead = Some(num(&mut args, "--assert-probe-overhead"))
            }
            "--assert-scaling" => parsed.assert_scaling = Some(num(&mut args, "--assert-scaling")),
            "--out" => parsed.out = args.next().expect("--out needs a path"),
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }
    parsed
}

/// One timed sweep pass: per-scenario wall times (measured inside the
/// worker that ran the scenario), the whole batch's wall time, and the
/// report bytes for the identity check.
struct SweepPass {
    jobs: usize,
    wall_ns: u64,
    cases: Vec<(String, u64)>,
    report: String,
}

fn run_sweep_pass(spec: &SweepSpec, jobs: usize) -> SweepPass {
    let scenarios = spec.scenarios();
    let started = Instant::now();
    let results = ab_scenario::run_jobs_local(
        scenarios,
        jobs,
        || World::new(0),
        |world, sc| {
            let t = Instant::now();
            let report = runner::run_in(world, &sc);
            (sc.name, t.elapsed().as_nanos() as u64, report)
        },
    );
    let wall_ns = started.elapsed().as_nanos() as u64;
    let mut cases = Vec::with_capacity(results.len());
    let mut runs = Vec::with_capacity(results.len());
    for (name, ns, report) in results {
        cases.push((name, ns));
        runs.push(report);
    }
    let report = ab_scenario::SweepReport { runs }.to_json().render();
    SweepPass {
        jobs,
        wall_ns,
        cases,
        report,
    }
}

/// The job counts the scaling table covers: 1, 2 and 4, clamped to the
/// `--jobs` budget (plus the budget itself when it exceeds 4).
fn scaling_job_counts(budget: usize) -> Vec<usize> {
    let mut counts: Vec<usize> = [1usize, 2, 4, budget]
        .into_iter()
        .filter(|&j| j <= budget.max(1))
        .collect();
    counts.sort_unstable();
    counts.dedup();
    counts
}

fn main() {
    let args = parse_args();
    let counting = allocs::counting_enabled();
    assert!(
        counting,
        "counting allocator must be installed in this binary"
    );
    let host_parallelism = ab_scenario::default_jobs();

    println!(
        "# bench_baseline mode={} alloc_counting={} jobs={} host_parallelism={}",
        if args.smoke { "smoke" } else { "full" },
        counting,
        args.jobs,
        host_parallelism,
    );
    println!(
        "# {:<18} {:>12} {:>12} {:>12} {:>14} {:>12}",
        "case", "delivered", "wall_ms", "kframes/s", "ns/frame", "allocs/frame"
    );

    // ------------------------------------------------ per-case measures
    // Serial on purpose: the counting allocator is global, so only a
    // sequential run attributes each case's allocations exactly. The
    // pool-submitted work is the scaling sweep below.
    let mut results: Vec<CaseResult> = Vec::new();
    for (kind, size) in CASES {
        let c = run_case(kind, size, args.smoke);
        println!(
            "  {:<18} {:>12} {:>12.1} {:>12.1} {:>14.1} {:>12.3}",
            c.name,
            c.frames_delivered,
            c.wall_ns as f64 / 1e6,
            c.frames_per_sec / 1e3,
            c.ns_per_frame,
            c.allocs_per_frame,
        );
        assert!(c.completed, "workload did not complete: {}", c.name);
        results.push(c);
    }

    // Improvement ratios against the PR 4 committed baseline.
    let mut improvements: Vec<(String, Json)> = Vec::new();
    for c in &results {
        if let Some(pr4) = baseline::pr4_case(&c.name) {
            if pr4.frames_per_sec > 0.0 {
                let speedup = c.frames_per_sec / pr4.frames_per_sec;
                println!(
                    "  {:<18} vs PR4 {:.2}x (pr4 {:.1} kframes/s, allocs/frame {:.3} -> {:.3})",
                    c.name,
                    speedup,
                    pr4.frames_per_sec / 1e3,
                    pr4.allocs_per_frame,
                    c.allocs_per_frame,
                );
                improvements.push((
                    c.name.clone(),
                    Json::obj(vec![
                        (
                            "frames_per_sec_ratio",
                            Json::F64((speedup * 100.0).round() / 100.0),
                        ),
                        ("ns_per_frame_before", Json::F64(pr4.ns_per_frame)),
                        (
                            "ns_per_frame_after",
                            Json::F64((c.ns_per_frame * 100.0).round() / 100.0),
                        ),
                        ("allocs_per_frame_before", Json::F64(pr4.allocs_per_frame)),
                        (
                            "allocs_per_frame_after",
                            Json::F64((c.allocs_per_frame * 1000.0).round() / 1000.0),
                        ),
                    ]),
                ));
            }
        }
    }

    // ------------------------------------------------ the scaling sweep
    let spec = SweepSpec::default_sweep(SWEEP_SEED);
    let job_counts = scaling_job_counts(args.jobs);
    let mut passes: Vec<SweepPass> = Vec::new();
    for &jobs in &job_counts {
        let pass = run_sweep_pass(&spec, jobs);
        println!(
            "# sweep jobs={:<2} wall {:>8.1} ms  ({} scenarios)",
            pass.jobs,
            pass.wall_ns as f64 / 1e6,
            pass.cases.len(),
        );
        passes.push(pass);
    }
    let reports_identical = passes.iter().all(|p| p.report == passes[0].report);
    let wall_at =
        |jobs: usize| -> Option<u64> { passes.iter().find(|p| p.jobs == jobs).map(|p| p.wall_ns) };
    let speedup_vs_serial = |jobs: usize| -> Option<f64> {
        match (wall_at(1), wall_at(jobs)) {
            (Some(t1), Some(tj)) if tj > 0 => Some(t1 as f64 / tj as f64),
            _ => None,
        }
    };
    let speedup_2 = speedup_vs_serial(2);
    let speedup_4 = speedup_vs_serial(4);
    println!(
        "# scaling: reports_identical={} speedup 2j={} 4j={}",
        reports_identical,
        speedup_2.map_or("n/a".into(), |s| format!("{s:.2}x")),
        speedup_4.map_or("n/a".into(), |s| format!("{s:.2}x")),
    );

    let scaling_json = Json::obj(vec![
        ("sweep_seed", Json::U64(SWEEP_SEED)),
        (
            "scenarios",
            Json::U64(passes.first().map_or(0, |p| p.cases.len() as u64)),
        ),
        ("host_parallelism", Json::U64(host_parallelism as u64)),
        ("jobs_budget", Json::U64(args.jobs as u64)),
        ("reports_identical", Json::Bool(reports_identical)),
        (
            "runs",
            Json::Arr(
                passes
                    .iter()
                    .map(|p| {
                        Json::obj(vec![
                            ("jobs", Json::U64(p.jobs as u64)),
                            ("wall_ns", Json::U64(p.wall_ns)),
                            (
                                "cases",
                                Json::Arr(
                                    p.cases
                                        .iter()
                                        .map(|(name, ns)| {
                                            Json::obj(vec![
                                                ("name", Json::str(name)),
                                                ("wall_ns", Json::U64(*ns)),
                                            ])
                                        })
                                        .collect(),
                                ),
                            ),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "speedup_2_jobs",
            speedup_2.map_or(Json::Null, |s| Json::F64((s * 100.0).round() / 100.0)),
        ),
        (
            "speedup_4_jobs",
            speedup_4.map_or(Json::Null, |s| Json::F64((s * 100.0).round() / 100.0)),
        ),
    ]);

    // ----------------------------------------------------- the artifact
    let doc = Json::obj(vec![
        ("schema", Json::str("ab-bench-baseline/v2")),
        ("pr", Json::U64(5)),
        ("mode", Json::str(if args.smoke { "smoke" } else { "full" })),
        ("alloc_counting", Json::Bool(counting)),
        ("host_parallelism", Json::U64(host_parallelism as u64)),
        ("cases", Json::Arr(results.iter().map(case_json).collect())),
        ("scaling", scaling_json),
        (
            "pr5_baseline",
            Json::obj(vec![
                ("provenance", Json::str(baseline::PR5_PROVENANCE)),
                ("cases", Json::Arr(pre_cases_json(baseline::PR5_BASELINE))),
            ]),
        ),
        (
            "pr4_baseline",
            Json::obj(vec![
                ("provenance", Json::str(baseline::PR4_PROVENANCE)),
                ("cases", Json::Arr(pre_cases_json(baseline::PR4_BASELINE))),
            ]),
        ),
        (
            "pr3_baseline",
            Json::obj(vec![
                ("provenance", Json::str(baseline::PR3_PROVENANCE)),
                ("cases", Json::Arr(pre_cases_json(baseline::PR3_BASELINE))),
            ]),
        ),
        (
            "pre_refactor",
            Json::obj(vec![
                ("provenance", Json::str(baseline::PRE_PROVENANCE)),
                ("cases", Json::Arr(pre_cases_json(baseline::PRE_REFACTOR))),
            ]),
        ),
        ("improvement_vs_pr4", Json::Obj(improvements)),
    ]);

    std::fs::write(&args.out, doc.render_pretty() + "\n").expect("write baseline JSON");
    println!("# wrote {}", args.out);

    // ------------------------------------------------------------ gates
    // Every gate below reads the emitted document's numeric fields: the
    // artifact is the source of truth, and what CI asserts is exactly
    // what it uploads.
    let mut failed = false;

    let doc_case = |name: &str| -> Option<&Json> {
        let Some(Json::Arr(cases)) = doc.get("cases") else {
            return None;
        };
        cases.iter().find(|c| {
            c.get("name")
                .map(|n| n == &Json::str(name))
                .unwrap_or(false)
        })
    };
    let case_num = |name: &str, field: &str| -> Option<f64> {
        doc_case(name)
            .and_then(|c| c.get(field))
            .and_then(Json::as_f64)
    };

    if args.assert_o1 {
        match (
            case_num("broadcast/small", "allocs_per_frame_num"),
            case_num("broadcast/large", "allocs_per_frame_num"),
        ) {
            (Some(s), Some(l)) => {
                let ok = l <= (s * ALLOC_O1_RATIO).max(ALLOC_O1_FLOOR);
                println!(
                    "# alloc O(1) in listeners: small {s:.3}/frame, large {l:.3}/frame -> {}",
                    if ok { "OK" } else { "VIOLATED" }
                );
                if !ok {
                    eprintln!(
                        "allocations per delivered frame grew with listener count: \
                         {s:.3} -> {l:.3} (limit {ALLOC_O1_RATIO}x over a floor of {ALLOC_O1_FLOOR})"
                    );
                    failed = true;
                }
            }
            _ => {
                eprintln!("broadcast cases missing numeric fields; cannot assert alloc O(1)");
                failed = true;
            }
        }
    }

    if let Some(max) = args.assert_ttcp_allocs {
        // The metro tier is held to the same steady-state budget as the
        // ttcp path (the PR 5 acceptance bar).
        for name in ["ttcp/large", "metro/large"] {
            match case_num(name, "allocs_per_frame_num") {
                Some(a) if a <= max => {}
                Some(a) => {
                    eprintln!(
                        "{name} steady-state allocations per frame {a:.3} exceed the limit {max}"
                    );
                    failed = true;
                }
                None => {
                    eprintln!("{name} case missing; cannot assert its alloc budget");
                    failed = true;
                }
            }
        }
    }

    if let Some(tol) = args.assert_vs_pr4 {
        match (
            case_num(ANCHOR, "frames_per_sec_num"),
            baseline::pr4_case(ANCHOR),
        ) {
            (Some(anchor_now), Some(anchor_pr4)) => {
                for c in &results {
                    let Some(pr4) = baseline::pr4_case(&c.name) else {
                        continue;
                    };
                    let Some(now) = case_num(&c.name, "frames_per_sec_num") else {
                        continue;
                    };
                    let now_rel = now / anchor_now;
                    let pr4_rel = pr4.frames_per_sec / anchor_pr4.frames_per_sec;
                    let ratio = now_rel / pr4_rel;
                    let ok = ratio >= 1.0 - tol;
                    println!(
                        "# vs PR4 (normalized to {ANCHOR}): {:<18} {:.2}x -> {}",
                        c.name,
                        ratio,
                        if ok { "OK" } else { "REGRESSED" }
                    );
                    if !ok {
                        eprintln!(
                            "throughput regressed >{:.0}% vs the PR4 baseline (normalized): \
                             {} ratio {:.2}",
                            tol * 100.0,
                            c.name,
                            ratio
                        );
                        failed = true;
                    }
                }
            }
            _ => {
                eprintln!("anchor case missing; cannot assert the PR4 comparison");
                failed = true;
            }
        }
    }

    if let Some(tol) = args.assert_probe_overhead {
        // Same anchor normalization as the PR 4 gate, but against the
        // PR 5 recording (the last one with no probe hooks compiled in)
        // and on ns-per-frame: every case's anchor-relative cost per
        // delivered frame must stay within `tol` of what it was before
        // the flight recorder existed. The probe is disarmed throughout
        // these runs, so this bounds the disarmed hook cost.
        match (
            case_num(ANCHOR, "ns_per_frame_num"),
            baseline::pr5_case(ANCHOR),
        ) {
            (Some(anchor_now), Some(anchor_pr5)) if anchor_now > 0.0 => {
                for c in &results {
                    let Some(pr5) = baseline::pr5_case(&c.name) else {
                        continue;
                    };
                    let Some(now) = case_num(&c.name, "ns_per_frame_num") else {
                        continue;
                    };
                    let now_rel = now / anchor_now;
                    let pr5_rel = pr5.ns_per_frame / anchor_pr5.ns_per_frame;
                    let ratio = now_rel / pr5_rel;
                    let ok = ratio <= 1.0 + tol;
                    println!(
                        "# probe overhead (disarmed, vs PR5, normalized to {ANCHOR}): \
                         {:<18} {:.3}x -> {}",
                        c.name,
                        ratio,
                        if ok { "OK" } else { "EXCEEDED" }
                    );
                    if !ok {
                        eprintln!(
                            "disarmed probe overhead exceeds {:.1}%: {} ns/frame ratio {:.3} \
                             vs the PR5 (pre-probe) baseline",
                            tol * 100.0,
                            c.name,
                            ratio
                        );
                        failed = true;
                    }
                }
            }
            _ => {
                eprintln!("anchor case missing; cannot assert the probe-overhead bound");
                failed = true;
            }
        }
    }

    // Byte-identity across job counts is a hard correctness property,
    // asserted whenever more than one pass ran (no flag needed).
    let identical =
        doc.get("scaling").and_then(|s| s.get("reports_identical")) == Some(&Json::Bool(true));
    if job_counts.len() > 1 && !identical {
        eprintln!("parallel sweep reports are NOT byte-identical across job counts");
        failed = true;
    }
    if let Some(eff) = args.assert_scaling {
        let speedup = doc
            .get("scaling")
            .and_then(|s| s.get("speedup_4_jobs"))
            .and_then(Json::as_f64);
        match speedup {
            _ if host_parallelism < 4 => {
                println!(
                    "# scaling gate skipped: host has {host_parallelism} hardware threads (< 4); \
                     speedup measured {}",
                    speedup.map_or("n/a".into(), |s| format!("{s:.2}x"))
                );
            }
            Some(s) if s >= eff => {
                println!("# scaling gate: {s:.2}x >= {eff:.2}x at 4 jobs -> OK");
            }
            Some(s) => {
                eprintln!("sweep speedup at 4 jobs is {s:.2}x, below the {eff:.2}x gate");
                failed = true;
            }
            None => {
                eprintln!(
                    "no 4-job pass ran (jobs budget {}); cannot assert scaling",
                    args.jobs
                );
                failed = true;
            }
        }
    }

    if failed {
        std::process::exit(1);
    }
}

fn pre_cases_json(cases: &[baseline::PreCase]) -> Vec<Json> {
    cases
        .iter()
        .map(|p| {
            Json::obj(vec![
                ("name", Json::str(p.name)),
                ("frames_delivered", Json::U64(p.frames_delivered)),
                (
                    "frames_per_sec",
                    Json::str(format!("{:.2}", p.frames_per_sec)),
                ),
                ("frames_per_sec_num", Json::F64(p.frames_per_sec)),
                ("ns_per_frame", Json::str(format!("{:.2}", p.ns_per_frame))),
                ("ns_per_frame_num", Json::F64(p.ns_per_frame)),
                (
                    "allocs_per_frame",
                    Json::str(format!("{:.3}", p.allocs_per_frame)),
                ),
                ("allocs_per_frame_num", Json::F64(p.allocs_per_frame)),
            ])
        })
        .collect()
}
