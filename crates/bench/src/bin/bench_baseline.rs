//! `bench_baseline` — measure the frame plane and emit `BENCH_PR3.json`.
//!
//! Runs the three baseline workloads at two topology sizes (see
//! `ab_bench::baseline`), prints a human-readable table, and writes a
//! machine-readable JSON artifact containing the fresh measurements, the
//! recorded pre-refactor measurements, and the improvement ratios.
//!
//! ```sh
//! cargo run --release -p ab_bench --bin bench_baseline -- [--smoke] \
//!     [--out BENCH_PR3.json] [--assert-alloc-o1]
//! ```
//!
//! * `--smoke` — CI-sized runs (a few seconds total);
//! * `--out`   — output path (default `BENCH_PR3.json`);
//! * `--assert-alloc-o1` — exit nonzero unless allocations per delivered
//!   frame stay O(1) in listener count (large broadcast must not allocate
//!   more per frame than small broadcast, within tolerance).

use ab_bench::allocs::{self, CountingAlloc};
use ab_bench::baseline::{self, case_json, run_case, CaseResult, CASES};
use ab_scenario::Json;

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// Allocations-per-frame headroom allowed between the small and large
/// broadcast topologies before the O(1) assertion fails, plus a small
/// absolute floor so a handful of constant allocations never trips the
/// ratio test. The floor sits far below one allocation per delivered
/// frame, so a regression to per-listener copying (≥ 1.0 allocs/frame,
/// as the pre-refactor plane measured) fails the gate outright.
const ALLOC_O1_RATIO: f64 = 1.5;
const ALLOC_O1_FLOOR: f64 = 0.1;

fn main() {
    let mut smoke = false;
    let mut assert_o1 = false;
    let mut out = String::from("BENCH_PR3.json");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--assert-alloc-o1" => assert_o1 = true,
            "--out" => out = args.next().expect("--out needs a path"),
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }

    let counting = allocs::counting_enabled();
    assert!(
        counting,
        "counting allocator must be installed in this binary"
    );

    println!(
        "# bench_baseline mode={} alloc_counting={}",
        if smoke { "smoke" } else { "full" },
        counting,
    );
    println!(
        "# {:<18} {:>12} {:>12} {:>12} {:>14} {:>12}",
        "case", "delivered", "wall_ms", "kframes/s", "ns/frame", "allocs/frame"
    );

    let mut results: Vec<CaseResult> = Vec::new();
    for (kind, size) in CASES {
        let c = run_case(kind, size, smoke);
        println!(
            "  {:<18} {:>12} {:>12.1} {:>12.1} {:>14.1} {:>12.3}",
            c.name,
            c.frames_delivered,
            c.wall_ns as f64 / 1e6,
            c.frames_per_sec / 1e3,
            c.ns_per_frame,
            c.allocs_per_frame,
        );
        assert!(c.completed, "workload did not complete: {}", c.name);
        results.push(c);
    }

    // Improvement ratios against the recorded pre-refactor measurements.
    let mut improvements: Vec<(String, Json)> = Vec::new();
    for c in &results {
        if let Some(pre) = baseline::pre_case(&c.name) {
            if pre.frames_per_sec > 0.0 {
                let speedup = c.frames_per_sec / pre.frames_per_sec;
                println!(
                    "  {:<18} speedup {:.2}x (pre {:.1} kframes/s, allocs/frame {:.3} -> {:.3})",
                    c.name,
                    speedup,
                    pre.frames_per_sec / 1e3,
                    pre.allocs_per_frame,
                    c.allocs_per_frame,
                );
                improvements.push((
                    c.name.clone(),
                    Json::obj(vec![
                        ("frames_per_sec_ratio", Json::str(format!("{speedup:.2}"))),
                        (
                            "allocs_per_frame_before",
                            Json::str(format!("{:.3}", pre.allocs_per_frame)),
                        ),
                        (
                            "allocs_per_frame_after",
                            Json::str(format!("{:.3}", c.allocs_per_frame)),
                        ),
                    ]),
                ));
            }
        }
    }

    // O(1)-allocations-in-listener-count check on the broadcast pair.
    let small = results.iter().find(|c| c.name == "broadcast/small");
    let large = results.iter().find(|c| c.name == "broadcast/large");
    let alloc_o1 = match (small, large) {
        (Some(s), Some(l)) => {
            let ok =
                l.allocs_per_frame <= (s.allocs_per_frame * ALLOC_O1_RATIO).max(ALLOC_O1_FLOOR);
            println!(
                "# alloc O(1) in listeners: small {:.3}/frame, large {:.3}/frame -> {}",
                s.allocs_per_frame,
                l.allocs_per_frame,
                if ok { "OK" } else { "VIOLATED" }
            );
            Some((ok, s.allocs_per_frame, l.allocs_per_frame))
        }
        _ => None,
    };

    let doc = Json::obj(vec![
        ("schema", Json::str("ab-bench-baseline/v1")),
        ("pr", Json::U64(3)),
        ("mode", Json::str(if smoke { "smoke" } else { "full" })),
        ("alloc_counting", Json::Bool(counting)),
        ("cases", Json::Arr(results.iter().map(case_json).collect())),
        (
            "pre_refactor",
            Json::obj(vec![
                ("provenance", Json::str(baseline::PRE_PROVENANCE)),
                (
                    "cases",
                    Json::Arr(
                        baseline::PRE_REFACTOR
                            .iter()
                            .map(|p| {
                                Json::obj(vec![
                                    ("name", Json::str(p.name)),
                                    ("frames_delivered", Json::U64(p.frames_delivered)),
                                    (
                                        "frames_per_sec",
                                        Json::str(format!("{:.2}", p.frames_per_sec)),
                                    ),
                                    ("ns_per_frame", Json::str(format!("{:.2}", p.ns_per_frame))),
                                    (
                                        "allocs_per_frame",
                                        Json::str(format!("{:.3}", p.allocs_per_frame)),
                                    ),
                                ])
                            })
                            .collect(),
                    ),
                ),
            ]),
        ),
        ("improvement", Json::Obj(improvements)),
        (
            "alloc_o1_in_listeners",
            match alloc_o1 {
                Some((ok, s, l)) => Json::obj(vec![
                    ("ok", Json::Bool(ok)),
                    (
                        "broadcast_small_allocs_per_frame",
                        Json::str(format!("{s:.3}")),
                    ),
                    (
                        "broadcast_large_allocs_per_frame",
                        Json::str(format!("{l:.3}")),
                    ),
                ]),
                None => Json::Null,
            },
        ),
    ]);

    std::fs::write(&out, doc.render_pretty() + "\n").expect("write baseline JSON");
    println!("# wrote {out}");

    if assert_o1 {
        match alloc_o1 {
            Some((true, _, _)) => {}
            Some((false, s, l)) => {
                eprintln!(
                    "allocations per delivered frame grew with listener count: \
                     {s:.3} -> {l:.3} (limit {ALLOC_O1_RATIO}x over a floor of {ALLOC_O1_FLOOR})"
                );
                std::process::exit(1);
            }
            None => {
                eprintln!("broadcast cases missing; cannot assert alloc O(1)");
                std::process::exit(1);
            }
        }
    }
}
