//! `bench_baseline` — measure the frame plane and emit `BENCH_PR4.json`.
//!
//! Runs the three baseline workloads at two topology sizes (see
//! `ab_bench::baseline`), prints a human-readable table, and writes a
//! machine-readable JSON artifact containing the fresh measurements, the
//! PR 3 committed baseline it diffs against, the pre-refactor history,
//! and the improvement ratios.
//!
//! ```sh
//! cargo run --release -p ab_bench --bin bench_baseline -- [--smoke] \
//!     [--out BENCH_PR4.json] [--assert-alloc-o1] \
//!     [--assert-ttcp-allocs 0.5] [--assert-vs-pr3 0.10]
//! ```
//!
//! * `--smoke` — CI-sized runs (a few seconds total);
//! * `--out`   — output path (default `BENCH_PR4.json`);
//! * `--assert-alloc-o1` — exit nonzero unless allocations per delivered
//!   frame stay O(1) in listener count (large broadcast must not allocate
//!   more per frame than small broadcast, within tolerance);
//! * `--assert-ttcp-allocs N` — exit nonzero if the ttcp/large
//!   steady-state allocations per delivered frame exceed `N`
//!   (machine-independent; the PR 4 execution-plane target is 0.5);
//! * `--assert-vs-pr3 TOL` — exit nonzero if any case's throughput,
//!   *normalized to the broadcast/large case of the same run*, regressed
//!   more than `TOL` versus the recorded PR 3 baseline. Normalizing by
//!   the pure frame-plane case cancels machine speed, so the gate is
//!   meaningful on CI runners that are faster or slower than the machine
//!   that recorded the baseline.

use ab_bench::allocs::{self, CountingAlloc};
use ab_bench::baseline::{self, case_json, run_case, CaseResult, CASES};
use ab_scenario::Json;

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// Allocations-per-frame headroom allowed between the small and large
/// broadcast topologies before the O(1) assertion fails, plus a small
/// absolute floor so a handful of constant allocations never trips the
/// ratio test. The floor sits far below one allocation per delivered
/// frame, so a regression to per-listener copying (≥ 1.0 allocs/frame,
/// as the pre-refactor plane measured) fails the gate outright.
const ALLOC_O1_RATIO: f64 = 1.5;
const ALLOC_O1_FLOOR: f64 = 0.1;

/// The case whose throughput serves as the machine-speed anchor for the
/// normalized PR 3 comparison.
const ANCHOR: &str = "broadcast/large";

fn main() {
    let mut smoke = false;
    let mut assert_o1 = false;
    let mut assert_ttcp_allocs: Option<f64> = None;
    let mut assert_vs_pr3: Option<f64> = None;
    let mut out = String::from("BENCH_PR4.json");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--assert-alloc-o1" => assert_o1 = true,
            "--assert-ttcp-allocs" => {
                assert_ttcp_allocs = Some(
                    args.next()
                        .expect("--assert-ttcp-allocs needs a number")
                        .parse()
                        .expect("--assert-ttcp-allocs needs a number"),
                )
            }
            "--assert-vs-pr3" => {
                assert_vs_pr3 = Some(
                    args.next()
                        .expect("--assert-vs-pr3 needs a tolerance")
                        .parse()
                        .expect("--assert-vs-pr3 needs a tolerance"),
                )
            }
            "--out" => out = args.next().expect("--out needs a path"),
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }

    let counting = allocs::counting_enabled();
    assert!(
        counting,
        "counting allocator must be installed in this binary"
    );

    println!(
        "# bench_baseline mode={} alloc_counting={}",
        if smoke { "smoke" } else { "full" },
        counting,
    );
    println!(
        "# {:<18} {:>12} {:>12} {:>12} {:>14} {:>12}",
        "case", "delivered", "wall_ms", "kframes/s", "ns/frame", "allocs/frame"
    );

    let mut results: Vec<CaseResult> = Vec::new();
    for (kind, size) in CASES {
        let c = run_case(kind, size, smoke);
        println!(
            "  {:<18} {:>12} {:>12.1} {:>12.1} {:>14.1} {:>12.3}",
            c.name,
            c.frames_delivered,
            c.wall_ns as f64 / 1e6,
            c.frames_per_sec / 1e3,
            c.ns_per_frame,
            c.allocs_per_frame,
        );
        assert!(c.completed, "workload did not complete: {}", c.name);
        results.push(c);
    }

    // Improvement ratios against the PR 3 committed baseline.
    let mut improvements: Vec<(String, Json)> = Vec::new();
    for c in &results {
        if let Some(pr3) = baseline::pr3_case(&c.name) {
            if pr3.frames_per_sec > 0.0 {
                let speedup = c.frames_per_sec / pr3.frames_per_sec;
                println!(
                    "  {:<18} vs PR3 {:.2}x (pr3 {:.1} kframes/s, allocs/frame {:.3} -> {:.3})",
                    c.name,
                    speedup,
                    pr3.frames_per_sec / 1e3,
                    pr3.allocs_per_frame,
                    c.allocs_per_frame,
                );
                improvements.push((
                    c.name.clone(),
                    Json::obj(vec![
                        ("frames_per_sec_ratio", Json::str(format!("{speedup:.2}"))),
                        (
                            "ns_per_frame_before",
                            Json::str(format!("{:.2}", pr3.ns_per_frame)),
                        ),
                        (
                            "ns_per_frame_after",
                            Json::str(format!("{:.2}", c.ns_per_frame)),
                        ),
                        (
                            "allocs_per_frame_before",
                            Json::str(format!("{:.3}", pr3.allocs_per_frame)),
                        ),
                        (
                            "allocs_per_frame_after",
                            Json::str(format!("{:.3}", c.allocs_per_frame)),
                        ),
                    ]),
                ));
            }
        }
    }

    // O(1)-allocations-in-listener-count check on the broadcast pair.
    let small = results.iter().find(|c| c.name == "broadcast/small");
    let large = results.iter().find(|c| c.name == "broadcast/large");
    let alloc_o1 = match (small, large) {
        (Some(s), Some(l)) => {
            let ok =
                l.allocs_per_frame <= (s.allocs_per_frame * ALLOC_O1_RATIO).max(ALLOC_O1_FLOOR);
            println!(
                "# alloc O(1) in listeners: small {:.3}/frame, large {:.3}/frame -> {}",
                s.allocs_per_frame,
                l.allocs_per_frame,
                if ok { "OK" } else { "VIOLATED" }
            );
            Some((ok, s.allocs_per_frame, l.allocs_per_frame))
        }
        _ => None,
    };

    // Normalized PR 3 regression check (machine-independent): each case's
    // throughput relative to this run's anchor versus its PR 3 value
    // relative to the PR 3 anchor.
    let mut vs_pr3_failures: Vec<String> = Vec::new();
    if let (Some(tol), Some(anchor_now), Some(anchor_pr3)) = (
        assert_vs_pr3,
        results.iter().find(|c| c.name == ANCHOR),
        baseline::pr3_case(ANCHOR),
    ) {
        for c in &results {
            let Some(pr3) = baseline::pr3_case(&c.name) else {
                continue;
            };
            let now_rel = c.frames_per_sec / anchor_now.frames_per_sec;
            let pr3_rel = pr3.frames_per_sec / anchor_pr3.frames_per_sec;
            let ratio = now_rel / pr3_rel;
            let ok = ratio >= 1.0 - tol;
            println!(
                "# vs PR3 (normalized to {ANCHOR}): {:<18} {:.2}x -> {}",
                c.name,
                ratio,
                if ok { "OK" } else { "REGRESSED" }
            );
            if !ok {
                vs_pr3_failures.push(format!("{} normalized ratio {:.2}", c.name, ratio));
            }
        }
    }

    let doc = Json::obj(vec![
        ("schema", Json::str("ab-bench-baseline/v1")),
        ("pr", Json::U64(4)),
        ("mode", Json::str(if smoke { "smoke" } else { "full" })),
        ("alloc_counting", Json::Bool(counting)),
        ("cases", Json::Arr(results.iter().map(case_json).collect())),
        (
            "pr3_baseline",
            Json::obj(vec![
                ("provenance", Json::str(baseline::PR3_PROVENANCE)),
                ("cases", Json::Arr(pre_cases_json(baseline::PR3_BASELINE))),
            ]),
        ),
        (
            "pre_refactor",
            Json::obj(vec![
                ("provenance", Json::str(baseline::PRE_PROVENANCE)),
                ("cases", Json::Arr(pre_cases_json(baseline::PRE_REFACTOR))),
            ]),
        ),
        ("improvement_vs_pr3", Json::Obj(improvements)),
        (
            "alloc_o1_in_listeners",
            match alloc_o1 {
                Some((ok, s, l)) => Json::obj(vec![
                    ("ok", Json::Bool(ok)),
                    (
                        "broadcast_small_allocs_per_frame",
                        Json::str(format!("{s:.3}")),
                    ),
                    (
                        "broadcast_large_allocs_per_frame",
                        Json::str(format!("{l:.3}")),
                    ),
                ]),
                None => Json::Null,
            },
        ),
    ]);

    std::fs::write(&out, doc.render_pretty() + "\n").expect("write baseline JSON");
    println!("# wrote {out}");

    let mut failed = false;
    if assert_o1 {
        match alloc_o1 {
            Some((true, _, _)) => {}
            Some((false, s, l)) => {
                eprintln!(
                    "allocations per delivered frame grew with listener count: \
                     {s:.3} -> {l:.3} (limit {ALLOC_O1_RATIO}x over a floor of {ALLOC_O1_FLOOR})"
                );
                failed = true;
            }
            None => {
                eprintln!("broadcast cases missing; cannot assert alloc O(1)");
                failed = true;
            }
        }
    }
    if let Some(max) = assert_ttcp_allocs {
        match results.iter().find(|c| c.name == "ttcp/large") {
            Some(c) if c.allocs_per_frame <= max => {}
            Some(c) => {
                eprintln!(
                    "ttcp/large steady-state allocations per frame {:.3} exceed the limit {max}",
                    c.allocs_per_frame
                );
                failed = true;
            }
            None => {
                eprintln!("ttcp/large case missing; cannot assert its alloc budget");
                failed = true;
            }
        }
    }
    if !vs_pr3_failures.is_empty() {
        eprintln!(
            "throughput regressed >{:.0}% vs the PR3 baseline (normalized): {}",
            assert_vs_pr3.unwrap_or(0.0) * 100.0,
            vs_pr3_failures.join(", ")
        );
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
}

fn pre_cases_json(cases: &[baseline::PreCase]) -> Vec<Json> {
    cases
        .iter()
        .map(|p| {
            Json::obj(vec![
                ("name", Json::str(p.name)),
                ("frames_delivered", Json::U64(p.frames_delivered)),
                (
                    "frames_per_sec",
                    Json::str(format!("{:.2}", p.frames_per_sec)),
                ),
                ("ns_per_frame", Json::str(format!("{:.2}", p.ns_per_frame))),
                (
                    "allocs_per_frame",
                    Json::str(format!("{:.3}", p.allocs_per_frame)),
                ),
            ])
        })
        .collect()
}
