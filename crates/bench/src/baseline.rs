//! The frame-plane throughput baseline: three representative workloads ×
//! two topology sizes, measured in wall-clock terms (frames/sec,
//! ns/frame) and in allocator terms (allocations per delivered frame).
//!
//! This is the harness behind the `bench_baseline` binary, which emits
//! `BENCH_PR4.json` so every PR from now on has a perf trajectory to
//! compare against (the way measurement repos treat throughput as a
//! first-class, regression-tracked artifact). The workloads:
//!
//! * **broadcast** — a broadcast storm through one bridge fanning out to
//!   many LANs with many promiscuous listeners: the worst case for a
//!   copying data plane (one wire frame becomes `ports × hosts`
//!   deliveries);
//! * **ttcp** — the Figure 10 bulk-transfer shape, point-to-point through
//!   a line of learning bridges (per-frame copies on the directed path);
//! * **pings** — many concurrent ping pairs through a star (small frames,
//!   protocol churn: ARP, ICMP echo, learning).
//!
//! Wall-clock numbers are machine-dependent; the JSON records them next
//! to the pre-refactor measurements taken with this same harness on the
//! same machine, so the *ratio* is the tracked quantity.

use std::time::Instant;

use ab_scenario::topo::{self, TopologyShape};
use ab_scenario::{bridge, host_ip, host_mac, lans, Json};
use active_bridge::BridgeConfig;
use ether::MacAddr;
use hostsim::{
    App, BlastApp, HostConfig, HostCostModel, HostNode, PingApp, TtcpRecvApp, TtcpSendApp,
};
use netsim::{CostModel, PortId, SimDuration, SimTime, World};
use netstack::tcplite::{ReceiverConfig, SenderConfig};

use crate::allocs;
use crate::experiments::run_until_done;

/// Which workload a case runs.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum ScenarioKind {
    /// Broadcast storm fan-out through one bridge.
    Broadcast,
    /// Figure 10-style bulk transfer through a line of bridges.
    Ttcp,
    /// Concurrent ping pairs through a star.
    Pings,
    /// The metro tier: a spine/leaf city topology with a crowd of
    /// silent hosts on every access segment and per-district flood
    /// blasters whose sink address nobody owns — every frame floods the
    /// whole metro and fans out to the full ≥ 1024-host population
    /// (the high-degree `DeliverAll` stress).
    Metro,
}

impl ScenarioKind {
    /// Stable label used in case names and JSON.
    pub fn label(self) -> &'static str {
        match self {
            ScenarioKind::Broadcast => "broadcast",
            ScenarioKind::Ttcp => "ttcp",
            ScenarioKind::Pings => "pings",
            ScenarioKind::Metro => "metro",
        }
    }
}

/// Topology size class.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum SizeClass {
    /// The small instance of a scenario.
    Small,
    /// The large instance (more listeners / more hops / more pairs).
    Large,
}

impl SizeClass {
    /// Stable label used in case names and JSON.
    pub fn label(self) -> &'static str {
        match self {
            SizeClass::Small => "small",
            SizeClass::Large => "large",
        }
    }
}

/// Every `(scenario, size)` pair the harness runs, in run order.
pub const CASES: [(ScenarioKind, SizeClass); 8] = [
    (ScenarioKind::Broadcast, SizeClass::Small),
    (ScenarioKind::Broadcast, SizeClass::Large),
    (ScenarioKind::Ttcp, SizeClass::Small),
    (ScenarioKind::Ttcp, SizeClass::Large),
    (ScenarioKind::Pings, SizeClass::Small),
    (ScenarioKind::Pings, SizeClass::Large),
    (ScenarioKind::Metro, SizeClass::Small),
    (ScenarioKind::Metro, SizeClass::Large),
];

/// One measured case.
#[derive(Clone, Debug)]
pub struct CaseResult {
    /// `scenario/size`, e.g. `broadcast/large`.
    pub name: String,
    /// Workload label.
    pub scenario: &'static str,
    /// Size label.
    pub size: &'static str,
    /// Host count in the topology.
    pub hosts: usize,
    /// Segment count.
    pub segments: usize,
    /// Bridge count.
    pub bridges: usize,
    /// Simulated time covered by the measured run.
    pub sim_ns: u64,
    /// Frames handed to `Ctx::send` during the run.
    pub frames_sent: u64,
    /// Frames delivered to node ports during the run (the throughput
    /// denominator: one wire frame delivered to N listeners counts N).
    pub frames_delivered: u64,
    /// Frames fully serialized on any wire.
    pub wire_frames: u64,
    /// Wall-clock duration of the run.
    pub wall_ns: u64,
    /// Delivered frames per wall-clock second.
    pub frames_per_sec: f64,
    /// Wall nanoseconds per delivered frame.
    pub ns_per_frame: f64,
    /// Heap allocations during the run (0 when the counting allocator is
    /// not installed).
    pub allocs: u64,
    /// Allocations per delivered frame.
    pub allocs_per_frame: f64,
    /// Bytes requested from the allocator during the run.
    pub alloc_bytes: u64,
    /// Workload-level sanity check (transfer finished, pings answered,
    /// blasters drained).
    pub completed: bool,
}

/// Frame totals at one instant; cases diff two of these so every metric
/// covers exactly the measured window (warm-up traffic excluded).
#[derive(Copy, Clone)]
struct Totals {
    delivered: u64,
    sent: u64,
    wire: u64,
}

fn totals(world: &World) -> Totals {
    Totals {
        delivered: world.frames_delivered(),
        sent: world.frames_sent(),
        wire: world.stats().total_tx_frames(),
    }
}

#[allow(clippy::too_many_arguments)] // measurement plumbing, one call site per case
fn finish_case(
    name: String,
    scenario: &'static str,
    size: &'static str,
    hosts: usize,
    segments: usize,
    bridges: usize,
    window: (Totals, Totals),
    sim_ns: u64,
    wall_ns: u64,
    allocs: u64,
    alloc_bytes: u64,
    completed: bool,
) -> CaseResult {
    let (t0, t1) = window;
    let delivered = t1.delivered - t0.delivered;
    let wall_secs = wall_ns as f64 / 1e9;
    CaseResult {
        name,
        scenario,
        size,
        hosts,
        segments,
        bridges,
        sim_ns,
        frames_sent: t1.sent - t0.sent,
        frames_delivered: delivered,
        wire_frames: t1.wire - t0.wire,
        wall_ns,
        frames_per_sec: if wall_secs > 0.0 {
            delivered as f64 / wall_secs
        } else {
            0.0
        },
        ns_per_frame: if delivered > 0 {
            wall_ns as f64 / delivered as f64
        } else {
            0.0
        },
        allocs,
        allocs_per_frame: if delivered > 0 {
            allocs as f64 / delivered as f64
        } else {
            0.0
        },
        alloc_bytes,
        completed,
    }
}

/// Run `f` and report `(wall_ns, alloc_calls, alloc_bytes)` around it.
fn measured(f: impl FnOnce()) -> (u64, u64, u64) {
    let allocs_before = allocs::alloc_calls();
    let bytes_before = allocs::alloc_bytes();
    let start = Instant::now();
    f();
    let wall_ns = start.elapsed().as_nanos() as u64;
    (
        wall_ns,
        allocs::alloc_calls() - allocs_before,
        allocs::alloc_bytes() - bytes_before,
    )
}

/// A bridge with the software path cost zeroed out: broadcast and ping
/// cases measure the simulator's frame plane itself, not the paper's
/// 1997 calibration (whose ~0.4 ms/frame service time would cap the
/// bridge near 2.5 kframes/s and turn the benchmark into a queue-drop
/// exercise). The ttcp case keeps the calibrated model for Figure 10
/// fidelity.
fn fast_bridge_cfg() -> BridgeConfig {
    BridgeConfig {
        cost: CostModel::FREE,
        ..Default::default()
    }
}

// ------------------------------------------------------------ broadcast

/// Blast interval: generous enough that `lans × serialization(1424 B)`
/// fits inside one interval on every LAN, so queues do not build up and
/// every offered frame is actually delivered.
const BLAST_INTERVAL: SimDuration = SimDuration::from_us(1200);
const BLAST_SIZE: usize = 1400;

fn run_broadcast(size: SizeClass, smoke: bool) -> CaseResult {
    let (n_lans, hosts_per_lan) = match size {
        SizeClass::Small => (4, 4),
        SizeClass::Large => (8, 8),
    };
    let count: u64 = if smoke { 80 } else { 800 };

    let mut world = World::new(11);
    world.trace_mut().set_enabled(false);
    let segs = lans(&mut world, n_lans);
    bridge(
        &mut world,
        0,
        &segs,
        fast_bridge_cfg(),
        &["bridge_learning"],
    );
    let mut n = 1u32;
    let mut blasters = Vec::new();
    for (li, &seg) in segs.iter().enumerate() {
        for hi in 0..hosts_per_lan {
            // The first host of every LAN blasts broadcast frames; every
            // other host is a listener.
            let apps = if hi == 0 {
                vec![BlastApp::new(
                    PortId(0),
                    MacAddr::BROADCAST,
                    BLAST_SIZE,
                    count,
                    BLAST_INTERVAL,
                )]
            } else {
                Vec::new()
            };
            let host = HostNode::new(
                format!("h{li}_{hi}"),
                HostConfig::simple(host_mac(n), host_ip(n), HostCostModel::FREE),
                apps,
            );
            let id = world.add_node(host);
            world.attach(id, seg);
            if hi == 0 {
                blasters.push(id);
            }
            n += 1;
        }
    }

    // Let the world come up, then measure the storm in steady state.
    world.run_until(SimTime::from_ms(1));
    let t0 = totals(&world);
    let span = BLAST_INTERVAL * count + SimDuration::from_ms(100);
    let horizon = world.now() + span;
    let (wall_ns, allocs, alloc_bytes) = measured(|| world.run_until(horizon));
    let t1 = totals(&world);

    // Every blaster must have drained its full frame budget.
    let completed = blasters.iter().all(|&b| {
        let App::Blast(blast) = world.node::<HostNode>(b).app(0) else {
            unreachable!()
        };
        blast.sent == count
    });
    finish_case(
        format!("broadcast/{}", size.label()),
        ScenarioKind::Broadcast.label(),
        size.label(),
        n_lans * hosts_per_lan,
        n_lans,
        1,
        (t0, t1),
        span.as_ns(),
        wall_ns,
        allocs,
        alloc_bytes,
        completed,
    )
}

// ----------------------------------------------------------------- ttcp

fn run_ttcp_case(size: SizeClass, smoke: bool) -> CaseResult {
    let n_bridges = match size {
        SizeClass::Small => 1,
        SizeClass::Large => 4,
    };
    let total_bytes: u64 = if smoke { 512 * 1024 } else { 4 * 1024 * 1024 };
    let write_size = 8192;

    let mut world = World::new(12);
    world.trace_mut().set_enabled(false);
    let segs = lans(&mut world, n_bridges + 1);
    for i in 0..n_bridges {
        bridge(
            &mut world,
            i as u32,
            &segs[i..=i + 1],
            BridgeConfig::default(),
            &["bridge_learning"],
        );
    }
    let cost = HostCostModel::pc_1997();
    let sender = world.add_node(HostNode::new(
        "sender",
        HostConfig::simple(host_mac(1), host_ip(1), cost),
        vec![TtcpSendApp::new(
            PortId(0),
            host_ip(2),
            5001,
            5001,
            total_bytes,
            write_size,
            SenderConfig::default(),
        )],
    ));
    world.attach(sender, segs[0]);
    let receiver = world.add_node(HostNode::new(
        "receiver",
        HostConfig::simple(host_mac(2), host_ip(2), cost),
        vec![TtcpRecvApp::new(5001, ReceiverConfig::default())],
    ));
    world.attach(receiver, segs[n_bridges]);

    let sim_start = {
        world.start();
        world.now()
    };
    let t0 = totals(&world);
    let (wall_ns, allocs, alloc_bytes) = measured(|| {
        run_until_done(&mut world, SimTime::from_secs(600), |w| {
            let App::TtcpSend(t) = w.node::<HostNode>(sender).app(0) else {
                unreachable!()
            };
            t.is_done()
        });
    });
    let t1 = totals(&world);
    let completed = {
        let App::TtcpSend(t) = world.node::<HostNode>(sender).app(0) else {
            unreachable!()
        };
        t.is_done()
    };
    let sim_ns = world.now().saturating_since(sim_start).as_ns();
    finish_case(
        format!("ttcp/{}", size.label()),
        ScenarioKind::Ttcp.label(),
        size.label(),
        2,
        n_bridges + 1,
        n_bridges,
        (t0, t1),
        sim_ns,
        wall_ns,
        allocs,
        alloc_bytes,
        completed,
    )
}

// ---------------------------------------------------------------- pings

fn run_pings(size: SizeClass, smoke: bool) -> CaseResult {
    let n_lans = match size {
        SizeClass::Small => 4,
        SizeClass::Large => 8,
    };
    let count: u32 = if smoke { 60 } else { 500 };
    let interval = SimDuration::from_ms(2);

    let mut world = World::new(13);
    world.trace_mut().set_enabled(false);
    let segs = lans(&mut world, n_lans);
    bridge(
        &mut world,
        0,
        &segs,
        fast_bridge_cfg(),
        &["bridge_learning"],
    );
    let cost = HostCostModel::pc_1997();
    // Host `i` lives on LAN `i` and pings host `(i+1) % n` — every LAN
    // both sources and sinks traffic through the star's hub.
    let hosts: Vec<_> = (0..n_lans)
        .map(|i| {
            let target = ((i + 1) % n_lans) as u32 + 1;
            let app = PingApp::new(
                PortId(0),
                host_ip(target),
                count,
                512,
                interval,
                0x50 + i as u16,
            );
            let id = world.add_node(HostNode::new(
                format!("pinger{i}"),
                HostConfig::simple(host_mac(i as u32 + 1), host_ip(i as u32 + 1), cost),
                vec![app],
            ));
            world.attach(id, segs[i]);
            id
        })
        .collect();

    world.run_until(SimTime::from_ms(1));
    let t0 = totals(&world);
    let span = interval * count as u64 + SimDuration::from_secs(2);
    let horizon = world.now() + span;
    let (wall_ns, allocs, alloc_bytes) = measured(|| world.run_until(horizon));
    let t1 = totals(&world);
    let received: u64 = hosts
        .iter()
        .map(|&h| {
            let App::Ping(p) = world.node::<HostNode>(h).app(0) else {
                unreachable!()
            };
            p.received as u64
        })
        .sum();
    let completed = received >= n_lans as u64 * count as u64;
    finish_case(
        format!("pings/{}", size.label()),
        ScenarioKind::Pings.label(),
        size.label(),
        n_lans,
        n_lans,
        1,
        (t0, t1),
        span.as_ns(),
        wall_ns,
        allocs,
        alloc_bytes,
        completed,
    )
}

// ---------------------------------------------------------------- metro

/// Crowd hosts per access segment — the scenario battery's own
/// constant, so the bench tier and the `metro` battery never drift
/// (64 access segments × 16 on the large preset ⇒ ≥ 1024 hosts).
const METRO_CROWD: usize = ab_scenario::workload::CROWD_PER_ACCESS as usize;

fn run_metro(size: SizeClass, smoke: bool) -> CaseResult {
    let shape = match size {
        SizeClass::Small => TopologyShape::metro_small(),
        SizeClass::Large => TopologyShape::metro_large(),
    };
    let TopologyShape::Metro {
        spines,
        districts,
        leaves,
    } = shape
    else {
        unreachable!("metro presets are metro-shaped")
    };
    let count: u64 = if smoke { 40 } else { 250 };
    // Generous: `districts` 512-byte floods crossing a legacy 10 Mb/s
    // access segment fit well inside one interval, so queues stay
    // shallow and every offered frame is delivered.
    let interval = SimDuration::from_ms(10);

    let topo = topo::generate(shape, 21);
    let access = topo.access_segments();
    let n_hosts = access.len() * METRO_CROWD + districts;
    let mut world = World::new(21);
    world.trace_mut().set_enabled(false);
    world.reserve_topology(topo.bridges.len() + n_hosts, topo.segments.len());
    let cfg = BridgeConfig {
        cost: CostModel::FREE,
        expected_stations: n_hosts + topo.bridges.len(),
        ..Default::default()
    };
    let built = topo::instantiate(&mut world, &topo, &cfg, &["bridge_learning"]);

    // The population: silent crowds on every access segment.
    let mut n = 1u32;
    for &seg in &access {
        for _ in 0..METRO_CROWD {
            let id = world.add_node(HostNode::new(
                format!("m{n}"),
                HostConfig::simple(host_mac(n), host_ip(n), HostCostModel::FREE),
                vec![],
            ));
            world.attach(id, built.segs[seg]);
            n += 1;
        }
    }
    // One blaster per district root, each aimed at an address nobody
    // owns: never learned, so every frame floods the entire metro.
    let mut blasters = Vec::with_capacity(districts);
    for d in 0..districts {
        let root = spines + d * leaves;
        let id = world.add_node(HostNode::new(
            format!("blaster{d}"),
            HostConfig::simple(host_mac(n), host_ip(n), HostCostModel::FREE),
            vec![BlastApp::new(
                PortId(0),
                host_mac(60_000 + d as u32),
                512,
                count,
                interval,
            )],
        ));
        world.attach(id, built.segs[root]);
        blasters.push(id);
        n += 1;
    }

    // Let the world come up, then measure the flood in steady state.
    world.run_until(SimTime::from_ms(1));
    let t0 = totals(&world);
    let span = interval * count + SimDuration::from_ms(100);
    let horizon = world.now() + span;
    let (wall_ns, allocs, alloc_bytes) = measured(|| world.run_until(horizon));
    let t1 = totals(&world);

    let completed = blasters.iter().all(|&b| {
        let App::Blast(blast) = world.node::<HostNode>(b).app(0) else {
            unreachable!()
        };
        blast.sent == count
    });
    finish_case(
        format!("metro/{}", size.label()),
        ScenarioKind::Metro.label(),
        size.label(),
        n_hosts,
        topo.segments.len(),
        topo.bridges.len(),
        (t0, t1),
        span.as_ns(),
        wall_ns,
        allocs,
        alloc_bytes,
        completed,
    )
}

/// Run one case.
pub fn run_case(kind: ScenarioKind, size: SizeClass, smoke: bool) -> CaseResult {
    match kind {
        ScenarioKind::Broadcast => run_broadcast(size, smoke),
        ScenarioKind::Ttcp => run_ttcp_case(size, smoke),
        ScenarioKind::Pings => run_pings(size, smoke),
        ScenarioKind::Metro => run_metro(size, smoke),
    }
}

// ----------------------------------------------------------------- JSON

fn f2(v: f64) -> Json {
    Json::str(format!("{v:.2}"))
}

/// The numeric twin of [`f2`]/the 3-decimal strings: the same value
/// rounded to `places` decimals, emitted as a JSON number. The string
/// forms stay for schema compatibility; gates and downstream tooling
/// read these.
fn fnum(v: f64, places: i32) -> Json {
    let scale = 10f64.powi(places);
    Json::F64((v * scale).round() / scale)
}

/// Render one case as JSON.
pub fn case_json(c: &CaseResult) -> Json {
    Json::obj(vec![
        ("name", Json::str(&c.name)),
        ("scenario", Json::str(c.scenario)),
        ("size", Json::str(c.size)),
        ("hosts", Json::U64(c.hosts as u64)),
        ("segments", Json::U64(c.segments as u64)),
        ("bridges", Json::U64(c.bridges as u64)),
        ("sim_ns", Json::U64(c.sim_ns)),
        ("frames_sent", Json::U64(c.frames_sent)),
        ("frames_delivered", Json::U64(c.frames_delivered)),
        ("wire_frames", Json::U64(c.wire_frames)),
        ("wall_ns", Json::U64(c.wall_ns)),
        ("frames_per_sec", f2(c.frames_per_sec)),
        ("frames_per_sec_num", fnum(c.frames_per_sec, 2)),
        ("ns_per_frame", f2(c.ns_per_frame)),
        ("ns_per_frame_num", fnum(c.ns_per_frame, 2)),
        ("allocs", Json::U64(c.allocs)),
        ("allocs_per_frame", f2(c.allocs_per_frame)),
        ("allocs_per_frame_num", fnum(c.allocs_per_frame, 3)),
        ("alloc_bytes", Json::U64(c.alloc_bytes)),
        ("completed", Json::Bool(c.completed)),
    ])
}

/// A recorded measurement from an earlier PR's committed baseline (same
/// harness, same machine class), kept so the emitted JSON carries its own
/// comparison points.
#[derive(Copy, Clone, Debug)]
pub struct PreCase {
    /// `scenario/size` (matches [`CaseResult::name`]).
    pub name: &'static str,
    /// Delivered frames in the measured window.
    pub frames_delivered: u64,
    /// Delivered frames per wall second.
    pub frames_per_sec: f64,
    /// Wall nanoseconds per delivered frame.
    pub ns_per_frame: f64,
    /// Heap allocations per delivered frame.
    pub allocs_per_frame: f64,
}

/// Where [`PRE_REFACTOR`] came from.
pub const PRE_PROVENANCE: &str = "this harness at commit 867f385 (Vec-copying frame plane, \
     before the FrameBuf refactor), full mode, release build, same container class as CI";

/// Pre-refactor numbers (recorded from a run of this exact harness on
/// the commit preceding the FrameBuf refactor; see [`PRE_PROVENANCE`]).
pub const PRE_REFACTOR: &[PreCase] = &[
    PreCase {
        name: "broadcast/small",
        frames_delivered: 51_200,
        frames_per_sec: 4_682_686.0,
        ns_per_frame: 213.55,
        allocs_per_frame: 0.624,
    },
    PreCase {
        name: "broadcast/large",
        frames_delivered: 409_600,
        frames_per_sec: 4_948_258.0,
        ns_per_frame: 202.09,
        allocs_per_frame: 0.343,
    },
    PreCase {
        name: "ttcp/small",
        frames_delivered: 9_312,
        frames_per_sec: 605_059.0,
        ns_per_frame: 1_652.73,
        allocs_per_frame: 5.823,
    },
    PreCase {
        name: "ttcp/large",
        frames_delivered: 23_280,
        frames_per_sec: 939_353.0,
        ns_per_frame: 1_064.56,
        allocs_per_frame: 4.137,
    },
    PreCase {
        name: "pings/small",
        frames_delivered: 8_024,
        frames_per_sec: 1_459_363.0,
        ns_per_frame: 685.23,
        allocs_per_frame: 5.726,
    },
    PreCase {
        name: "pings/large",
        frames_delivered: 16_080,
        frames_per_sec: 1_340_719.0,
        ns_per_frame: 745.87,
        allocs_per_frame: 5.721,
    },
];

/// Pre-refactor numbers for `name`, if recorded.
pub fn pre_case(name: &str) -> Option<&'static PreCase> {
    PRE_REFACTOR.iter().find(|p| p.name == name)
}

/// Where [`PR3_BASELINE`] came from.
pub const PR3_PROVENANCE: &str = "BENCH_PR3.json as committed at e65ed23 (zero-copy frame plane, \
     before the PR 4 execution-plane work), full mode, release build, same container class as CI";

/// The PR 3 committed baseline (the `cases` section of BENCH_PR3.json) —
/// what this PR's measurements diff against.
pub const PR3_BASELINE: &[PreCase] = &[
    PreCase {
        name: "broadcast/small",
        frames_delivered: 51_136,
        frames_per_sec: 10_876_662.95,
        ns_per_frame: 91.94,
        allocs_per_frame: 0.0,
    },
    PreCase {
        name: "broadcast/large",
        frames_delivered: 409_088,
        frames_per_sec: 18_215_612.84,
        ns_per_frame: 54.90,
        allocs_per_frame: 0.0,
    },
    PreCase {
        name: "ttcp/small",
        frames_delivered: 9_312,
        frames_per_sec: 693_227.12,
        ns_per_frame: 1_442.53,
        allocs_per_frame: 3.156,
    },
    PreCase {
        name: "ttcp/large",
        frames_delivered: 23_280,
        frames_per_sec: 1_131_760.61,
        ns_per_frame: 883.58,
        allocs_per_frame: 1.267,
    },
    PreCase {
        name: "pings/small",
        frames_delivered: 7_984,
        frames_per_sec: 1_678_691.97,
        ns_per_frame: 595.70,
        allocs_per_frame: 3.254,
    },
    PreCase {
        name: "pings/large",
        frames_delivered: 15_994,
        frames_per_sec: 1_645_230.19,
        ns_per_frame: 607.82,
        allocs_per_frame: 3.252,
    },
];

/// PR 3 baseline numbers for `name`, if recorded.
pub fn pr3_case(name: &str) -> Option<&'static PreCase> {
    PR3_BASELINE.iter().find(|p| p.name == name)
}

/// Where [`PR4_BASELINE`] came from.
pub const PR4_PROVENANCE: &str = "BENCH_PR4.json as committed at 50cb232 (hot switchlet execution \
     plane, before the PR 5 multi-core work), full mode, release build, same container class as CI";

/// The PR 4 committed baseline (the `cases` section of BENCH_PR4.json) —
/// what this PR's measurements diff against. The metro cases are new in
/// PR 5 and have no earlier recording.
pub const PR4_BASELINE: &[PreCase] = &[
    PreCase {
        name: "broadcast/small",
        frames_delivered: 51_136,
        frames_per_sec: 12_172_890.47,
        ns_per_frame: 82.15,
        allocs_per_frame: 0.0,
    },
    PreCase {
        name: "broadcast/large",
        frames_delivered: 409_088,
        frames_per_sec: 18_110_397.51,
        ns_per_frame: 55.22,
        allocs_per_frame: 0.0,
    },
    PreCase {
        name: "ttcp/small",
        frames_delivered: 9_312,
        frames_per_sec: 1_950_246.51,
        ns_per_frame: 512.76,
        allocs_per_frame: 0.76,
    },
    PreCase {
        name: "ttcp/large",
        frames_delivered: 23_280,
        frames_per_sec: 3_136_626.35,
        ns_per_frame: 318.81,
        allocs_per_frame: 0.26,
    },
    PreCase {
        name: "pings/small",
        frames_delivered: 7_984,
        frames_per_sec: 3_168_496.63,
        ns_per_frame: 315.61,
        allocs_per_frame: 0.50,
    },
    PreCase {
        name: "pings/large",
        frames_delivered: 15_994,
        frames_per_sec: 3_059_476.34,
        ns_per_frame: 326.85,
        allocs_per_frame: 0.50,
    },
];

/// PR 4 baseline numbers for `name`, if recorded.
pub fn pr4_case(name: &str) -> Option<&'static PreCase> {
    PR4_BASELINE.iter().find(|p| p.name == name)
}

/// Where [`PR5_BASELINE`] came from.
pub const PR5_PROVENANCE: &str = "BENCH_PR5.json as committed at 96420a7 (multi-core execution \
     plane, before the PR 7 flight-recorder work), full mode, release build, same container \
     class as CI";

/// The PR 5 committed baseline (the `cases` section of BENCH_PR5.json) —
/// the anchor set for the probe-overhead gate: these numbers were
/// recorded before any flight-recorder hook existed, so a disarmed-probe
/// run that stays within tolerance of them (anchor-normalized) proves
/// the hooks' disarmed cost is in the noise.
pub const PR5_BASELINE: &[PreCase] = &[
    PreCase {
        name: "broadcast/small",
        frames_delivered: 51_136,
        frames_per_sec: 12_806_276.52,
        ns_per_frame: 78.09,
        allocs_per_frame: 0.0,
    },
    PreCase {
        name: "broadcast/large",
        frames_delivered: 409_088,
        frames_per_sec: 17_913_263.81,
        ns_per_frame: 55.82,
        allocs_per_frame: 0.0,
    },
    PreCase {
        name: "ttcp/small",
        frames_delivered: 9_312,
        frames_per_sec: 1_896_266.18,
        ns_per_frame: 527.35,
        allocs_per_frame: 0.756,
    },
    PreCase {
        name: "ttcp/large",
        frames_delivered: 23_280,
        frames_per_sec: 2_862_498.98,
        ns_per_frame: 349.35,
        allocs_per_frame: 0.258,
    },
    PreCase {
        name: "pings/small",
        frames_delivered: 7_984,
        frames_per_sec: 3_001_704.63,
        ns_per_frame: 333.14,
        allocs_per_frame: 0.504,
    },
    PreCase {
        name: "pings/large",
        frames_delivered: 15_994,
        frames_per_sec: 2_967_711.98,
        ns_per_frame: 336.96,
        allocs_per_frame: 0.504,
    },
    PreCase {
        name: "metro/small",
        frames_delivered: 139_572,
        frames_per_sec: 21_764_015.46,
        ns_per_frame: 45.95,
        allocs_per_frame: 0.0,
    },
    PreCase {
        name: "metro/large",
        frames_delivered: 4_413_208,
        frames_per_sec: 21_586_668.21,
        ns_per_frame: 46.32,
        allocs_per_frame: 0.0,
    },
];

/// PR 5 baseline numbers for `name`, if recorded.
pub fn pr5_case(name: &str) -> Option<&'static PreCase> {
    PR5_BASELINE.iter().find(|p| p.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_cases_run_and_deliver() {
        let b = run_case(ScenarioKind::Broadcast, SizeClass::Small, true);
        assert!(b.completed, "broadcast blasters must drain: {b:?}");
        assert!(b.frames_delivered > 1000, "storm must fan out: {b:?}");
        let p = run_case(ScenarioKind::Pings, SizeClass::Small, true);
        assert!(p.completed, "all pings must be answered: {p:?}");
    }

    #[test]
    fn metro_small_floods_the_population() {
        let m = run_case(ScenarioKind::Metro, SizeClass::Small, true);
        assert!(m.completed, "metro blasters must drain: {m:?}");
        // Flooded frames reach far more listeners than wires carried
        // frames: high-degree fan-out is the point of the tier.
        assert!(
            m.frames_delivered as f64 / m.wire_frames as f64 > 8.0,
            "metro fan-out too low: {m:?}"
        );
        assert!(m.hosts >= 100, "small metro population: {m:?}");
    }

    #[test]
    fn broadcast_large_has_more_listeners_per_wire_frame() {
        let small = run_case(ScenarioKind::Broadcast, SizeClass::Small, true);
        let large = run_case(ScenarioKind::Broadcast, SizeClass::Large, true);
        let per_wire_small = small.frames_delivered as f64 / small.wire_frames as f64;
        let per_wire_large = large.frames_delivered as f64 / large.wire_frames as f64;
        assert!(
            per_wire_large > per_wire_small,
            "large topology must raise the listener fan-out ({per_wire_small:.2} vs {per_wire_large:.2})"
        );
    }
}
