//! # ab-bench — the experiment harness
//!
//! One runner per table/figure in the paper's evaluation (Section 7),
//! shared by the Criterion benches, the examples and the integration
//! tests. Every runner builds a deterministic world, drives it to
//! completion, and returns plain result structs; the benches print them
//! in the paper's row/series format.

pub mod allocs;
pub mod baseline;
pub mod experiments;
pub mod table;

pub use experiments::*;
