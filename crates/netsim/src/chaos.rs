//! Deterministic chaos plane: scheduled topology faults.
//!
//! `netsim::fault` injects *probabilistic* per-frame faults; this module
//! injects *structured* topology failures — a link going down and coming
//! back, a bridge crashing and restarting cold — as first-class world
//! events, totally ordered with everything else by `(time, seq)`.
//!
//! # Script model
//!
//! A [`ChaosScript`] is plain data: a list of [`ChaosStep`]s, each an
//! offset from the script's origin plus a [`ChaosAction`] naming its
//! target by *topology index* (the i-th segment / i-th bridge of the
//! scenario), not by world id. Scenario generators build scripts as pure
//! functions of the scenario seed; [`ChaosScript::schedule`] maps the
//! indices through the built topology's id tables and pushes one
//! [`crate::world::World`] event per step, all up-front — so the event
//! order never depends on execution interleaving and a chaotic run
//! replays byte-for-byte.
//!
//! # Determinism obligations
//!
//! * A **transparent** script (no steps) schedules nothing, draws
//!   nothing from the world RNG and perturbs nothing: golden digests of
//!   chaos-free runs are unaffected by this module existing.
//! * Chaos events themselves never draw from the RNG; any randomness in
//!   a script (which link, when) is decided at *generation* time from
//!   the scenario seed, so the schedule is fixed before the world runs.
//! * Down-link drops and crash-node suppressions are pure functions of
//!   the event order, so they replay exactly.

use crate::node::NodeId;
use crate::segment::SegId;
use crate::time::{SimDuration, SimTime};
use crate::world::World;

/// A resolved chaos event, carried on the world event queue.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum ChaosEv {
    /// Take a segment down: frames offered while down are dropped (and
    /// counted in [`crate::SegCounters::down_drops`]); frames already
    /// serializing or queued drain normally.
    LinkDown(SegId),
    /// Bring a segment back up.
    LinkUp(SegId),
    /// Crash a node: its volatile state is discarded
    /// ([`crate::Node::on_crash`]), and while crashed it receives no
    /// frames and none of its pending timers fire.
    NodeCrash(NodeId),
    /// Restart a crashed node cold ([`crate::Node::on_restart`]).
    NodeRestart(NodeId),
}

/// One scripted action, in topology-index form: `seg` / `node` are
/// indices into the scenario's segment and bridge tables, resolved to
/// world ids by [`ChaosScript::schedule`].
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum ChaosAction {
    /// Take the `seg`-th segment down.
    LinkDown { seg: usize },
    /// Bring the `seg`-th segment back up.
    LinkUp { seg: usize },
    /// Crash the `node`-th bridge.
    NodeCrash { node: usize },
    /// Restart the `node`-th bridge.
    NodeRestart { node: usize },
}

/// One step of a [`ChaosScript`]: perform `action` at `at` past the
/// script origin.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct ChaosStep {
    /// Offset from the script origin.
    pub at: SimDuration,
    /// What to do.
    pub action: ChaosAction,
}

/// A deterministic schedule of topology faults. Plain data, built by
/// scenario generators as a pure function of the scenario seed.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ChaosScript {
    /// The steps, in the order they were pushed. Steps sharing an
    /// instant fire in push order (the event queue breaks time ties by
    /// sequence number).
    pub steps: Vec<ChaosStep>,
}

impl ChaosScript {
    /// The empty script: schedules nothing, perturbs nothing.
    pub fn transparent() -> Self {
        ChaosScript::default()
    }

    /// True if this script can never alter a run.
    pub fn is_transparent(&self) -> bool {
        self.steps.is_empty()
    }

    /// The latest step offset (zero for a transparent script).
    pub fn span(&self) -> SimDuration {
        self.steps
            .iter()
            .map(|s| s.at)
            .max()
            .unwrap_or(SimDuration::ZERO)
    }

    /// Schedule `LinkDown` on the `seg`-th segment at `at`.
    pub fn link_down(&mut self, at: SimDuration, seg: usize) -> &mut Self {
        self.steps.push(ChaosStep {
            at,
            action: ChaosAction::LinkDown { seg },
        });
        self
    }

    /// Schedule `LinkUp` on the `seg`-th segment at `at`.
    pub fn link_up(&mut self, at: SimDuration, seg: usize) -> &mut Self {
        self.steps.push(ChaosStep {
            at,
            action: ChaosAction::LinkUp { seg },
        });
        self
    }

    /// Schedule a crash of the `node`-th bridge at `at`.
    pub fn crash(&mut self, at: SimDuration, node: usize) -> &mut Self {
        self.steps.push(ChaosStep {
            at,
            action: ChaosAction::NodeCrash { node },
        });
        self
    }

    /// Schedule a restart of the `node`-th bridge at `at`.
    pub fn restart(&mut self, at: SimDuration, node: usize) -> &mut Self {
        self.steps.push(ChaosStep {
            at,
            action: ChaosAction::NodeRestart { node },
        });
        self
    }

    /// Partition-then-heal: down at `down_at`, back up at `up_at`.
    pub fn partition(&mut self, seg: usize, down_at: SimDuration, up_at: SimDuration) -> &mut Self {
        self.link_down(down_at, seg).link_up(up_at, seg)
    }

    /// A flap storm: `flaps` down/up cycles starting at `start`, each
    /// down for `down_for` then up for `up_for`.
    pub fn flap_storm(
        &mut self,
        seg: usize,
        start: SimDuration,
        flaps: u32,
        down_for: SimDuration,
        up_for: SimDuration,
    ) -> &mut Self {
        let mut t = start;
        for _ in 0..flaps {
            self.link_down(t, seg);
            t += down_for;
            self.link_up(t, seg);
            t += up_for;
        }
        self
    }

    /// Crash-then-restart: down at `crash_at`, cold restart at
    /// `restart_at`.
    pub fn crash_cycle(
        &mut self,
        node: usize,
        crash_at: SimDuration,
        restart_at: SimDuration,
    ) -> &mut Self {
        self.crash(crash_at, node).restart(restart_at, node)
    }

    /// The offset of the last *healing* step (`LinkUp` / `NodeRestart`),
    /// if any — the instant after which recovery invariants start their
    /// clock.
    pub fn last_heal_at(&self) -> Option<SimDuration> {
        self.steps
            .iter()
            .filter(|s| {
                matches!(
                    s.action,
                    ChaosAction::LinkUp { .. } | ChaosAction::NodeRestart { .. }
                )
            })
            .map(|s| s.at)
            .max()
    }

    /// Number of `NodeCrash` steps.
    pub fn crash_count(&self) -> u64 {
        self.steps
            .iter()
            .filter(|s| matches!(s.action, ChaosAction::NodeCrash { .. }))
            .count() as u64
    }

    /// Resolve every step's topology index through `segs` / `nodes` and
    /// push one world event per step, all up-front at `origin + step.at`.
    /// Panics if a step's index is out of range — a script is only
    /// meaningful against the topology it was generated for.
    pub fn schedule(&self, world: &mut World, origin: SimTime, segs: &[SegId], nodes: &[NodeId]) {
        for step in &self.steps {
            let ev = match step.action {
                ChaosAction::LinkDown { seg } => ChaosEv::LinkDown(segs[seg]),
                ChaosAction::LinkUp { seg } => ChaosEv::LinkUp(segs[seg]),
                ChaosAction::NodeCrash { node } => ChaosEv::NodeCrash(nodes[node]),
                ChaosAction::NodeRestart { node } => ChaosEv::NodeRestart(nodes[node]),
            };
            world.schedule_chaos(origin + step.at, ev);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transparent_script_is_empty_and_spans_zero() {
        let s = ChaosScript::transparent();
        assert!(s.is_transparent());
        assert_eq!(s.span(), SimDuration::ZERO);
        assert_eq!(s.last_heal_at(), None);
        assert_eq!(s.crash_count(), 0);
    }

    #[test]
    fn builders_compose_in_order() {
        let mut s = ChaosScript::transparent();
        s.partition(0, SimDuration::from_ms(10), SimDuration::from_ms(30))
            .crash_cycle(2, SimDuration::from_ms(20), SimDuration::from_ms(40));
        assert!(!s.is_transparent());
        assert_eq!(s.steps.len(), 4);
        assert_eq!(s.span(), SimDuration::from_ms(40));
        assert_eq!(s.last_heal_at(), Some(SimDuration::from_ms(40)));
        assert_eq!(s.crash_count(), 1);
        assert_eq!(
            s.steps[0].action,
            ChaosAction::LinkDown { seg: 0 },
            "steps keep push order"
        );
    }

    #[test]
    fn flap_storm_alternates_down_up() {
        let mut s = ChaosScript::transparent();
        s.flap_storm(
            1,
            SimDuration::from_ms(5),
            3,
            SimDuration::from_ms(2),
            SimDuration::from_ms(3),
        );
        assert_eq!(s.steps.len(), 6);
        // Last up fires at 5 + 2*(2+3) + 2 = 17 ms.
        assert_eq!(s.last_heal_at(), Some(SimDuration::from_ms(17)));
        for (i, step) in s.steps.iter().enumerate() {
            if i % 2 == 0 {
                assert!(matches!(step.action, ChaosAction::LinkDown { seg: 1 }));
            } else {
                assert!(matches!(step.action, ChaosAction::LinkUp { seg: 1 }));
            }
        }
    }
}
