//! Run-wide trace log and counters.
//!
//! The trace is a bounded ring of human-readable entries that nodes and the
//! kernel of the simulator append to; tests assert on it and examples print
//! it. Counters are a string-keyed map used by experiment harnesses to
//! accumulate results (frames forwarded, bytes received, ...).

use std::collections::BTreeMap;
use std::collections::VecDeque;

use crate::node::NodeId;
use crate::time::SimTime;

/// One trace entry.
#[derive(Clone, Debug)]
pub struct TraceEntry {
    /// When it happened.
    pub at: SimTime,
    /// Which node logged it (None for simulator-kernel entries).
    pub node: Option<NodeId>,
    /// The message.
    pub msg: String,
}

/// Bounded in-memory trace.
pub struct Trace {
    entries: VecDeque<TraceEntry>,
    cap: usize,
    /// Total entries ever appended (including evicted ones).
    appended: u64,
    enabled: bool,
}

impl Trace {
    pub(crate) fn new(cap: usize) -> Self {
        Trace {
            entries: VecDeque::new(),
            cap,
            appended: 0,
            enabled: true,
        }
    }

    /// Turn tracing off (entries are discarded) or back on.
    pub fn set_enabled(&mut self, enabled: bool) {
        self.enabled = enabled;
    }

    /// Rewind to the fresh-trace state (empty, zero appended, enabled),
    /// keeping the ring's storage.
    pub(crate) fn reset(&mut self) {
        self.entries.clear();
        self.appended = 0;
        self.enabled = true;
    }

    pub(crate) fn push(&mut self, at: SimTime, node: Option<NodeId>, msg: String) {
        self.appended += 1;
        if !self.enabled {
            return;
        }
        if self.entries.len() == self.cap {
            self.entries.pop_front();
        }
        self.entries.push_back(TraceEntry { at, node, msg });
    }

    /// The retained entries, oldest first.
    pub fn entries(&self) -> impl Iterator<Item = &TraceEntry> {
        self.entries.iter()
    }

    /// Total entries ever appended.
    pub fn appended(&self) -> u64 {
        self.appended
    }

    /// True if any retained entry's message contains `needle`.
    pub fn contains(&self, needle: &str) -> bool {
        self.entries.iter().any(|e| e.msg.contains(needle))
    }

    /// Retained entries whose message contains `needle`.
    pub fn find<'a>(&'a self, needle: &'a str) -> impl Iterator<Item = &'a TraceEntry> + 'a {
        self.entries.iter().filter(move |e| e.msg.contains(needle))
    }
}

/// String-keyed experiment counters. Uses a BTreeMap so printed output is
/// stable.
#[derive(Default, Debug, Clone)]
pub struct Counters {
    map: BTreeMap<String, u64>,
}

impl Counters {
    /// Add `n` to `key`.
    pub fn bump(&mut self, key: &str, n: u64) {
        *self.map.entry(key.to_owned()).or_insert(0) += n;
    }

    /// Read `key` (0 if never bumped).
    pub fn get(&self, key: &str) -> u64 {
        self.map.get(key).copied().unwrap_or(0)
    }

    /// All counters in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, u64)> {
        self.map.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Forget every counter.
    pub fn clear(&mut self) {
        self.map.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_evicts_oldest() {
        let mut t = Trace::new(2);
        t.push(SimTime::from_ms(1), None, "a".into());
        t.push(SimTime::from_ms(2), None, "b".into());
        t.push(SimTime::from_ms(3), None, "c".into());
        let msgs: Vec<&str> = t.entries().map(|e| e.msg.as_str()).collect();
        assert_eq!(msgs, vec!["b", "c"]);
        assert_eq!(t.appended(), 3);
    }

    #[test]
    fn disabled_trace_discards() {
        let mut t = Trace::new(10);
        t.set_enabled(false);
        t.push(SimTime::ZERO, None, "x".into());
        assert_eq!(t.entries().count(), 0);
        assert_eq!(t.appended(), 1);
    }

    #[test]
    fn counters_accumulate() {
        let mut c = Counters::default();
        c.bump("rx", 2);
        c.bump("rx", 3);
        assert_eq!(c.get("rx"), 5);
        assert_eq!(c.get("missing"), 0);
    }
}
