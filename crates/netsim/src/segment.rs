//! Shared-medium Ethernet segment model.
//!
//! A segment is one LAN: every attached port hears every frame (the paper's
//! bridges put their ports in promiscuous mode and rely on this). The medium
//! serializes one frame at a time at the configured bandwidth — senders
//! queue behind each other exactly as they would contend for a shared
//! 100 Mb/s Ethernet. Collisions are idealized into queueing (a common DES
//! simplification; the paper's measurements were taken on otherwise idle
//! LANs where collisions are negligible).
//!
//! Per-frame wire overhead (preamble + SFD + inter-frame gap + FCS if the
//! caller does not include one) is charged via
//! [`SegmentConfig::overhead_bytes`].

use std::collections::VecDeque;

use crate::fault::FaultConfig;
use crate::framebuf::FrameBuf;
use crate::node::{NodeId, PortId};
use crate::time::{SimDuration, SimTime};

/// Identifies a segment within a [`crate::World`].
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct SegId(pub usize);

impl core::fmt::Display for SegId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "lan{}", self.0)
    }
}

/// Configuration for one LAN segment.
#[derive(Clone, Debug)]
pub struct SegmentConfig {
    /// Human-readable name for traces.
    pub name: String,
    /// Link bandwidth in bits per second. Default: 100 Mb/s (the paper's
    /// "100 Mbps Ethernet LANs").
    pub bandwidth_bps: u64,
    /// One-way propagation delay. Default: 1 us (a few hundred meters).
    pub propagation: SimDuration,
    /// Extra octets charged per frame for preamble/SFD/IFG/FCS.
    /// Default: 24 (8 preamble + 12 IFG + 4 FCS).
    pub overhead_bytes: usize,
    /// Transmit queue capacity in frames; frames offered beyond this are
    /// dropped and counted. Default: 512.
    pub queue_cap: usize,
    /// Fault injection configuration.
    pub fault: FaultConfig,
    /// When true, every frame that completes serialization is recorded in
    /// [`Segment::captured`] (a pcap-like trace for tests).
    pub capture: bool,
}

impl Default for SegmentConfig {
    fn default() -> Self {
        SegmentConfig {
            name: String::from("lan"),
            bandwidth_bps: 100_000_000,
            propagation: SimDuration::from_us(1),
            overhead_bytes: 24,
            queue_cap: 512,
            fault: FaultConfig::default(),
            capture: false,
        }
    }
}

impl SegmentConfig {
    /// A named 100 Mb/s segment with defaults.
    pub fn named(name: impl Into<String>) -> Self {
        SegmentConfig {
            name: name.into(),
            ..Default::default()
        }
    }
}

/// Traffic counters for one segment.
#[derive(Clone, Debug, Default)]
pub struct SegCounters {
    /// Frames fully serialized onto the wire.
    pub tx_frames: u64,
    /// Payload octets serialized (excluding configured overhead).
    pub tx_bytes: u64,
    /// Frame deliveries to ports (one frame to N listeners counts N).
    pub deliveries: u64,
    /// Frames that found the medium busy and had to queue behind another
    /// transmission — the idealized-collision count of this model (real
    /// CSMA/CD would have collided and backed off here).
    pub contended: u64,
    /// Deepest the transmit queue ever got (frames waiting behind the
    /// one being serialized) — how close the segment came to dropping
    /// under load. Quality scoring reads this as degradation evidence.
    pub peak_queue: u64,
    /// Frames dropped because the transmit queue was full.
    pub queue_drops: u64,
    /// Frames offered while the segment was scripted down (see
    /// [`crate::chaos`]) and therefore dropped at the offer point.
    pub down_drops: u64,
    /// Frames dropped by fault injection.
    pub fault_drops: u64,
    /// The subset of `fault_drops` fired by the Gilbert–Elliott burst
    /// model's *bad* state (see [`crate::fault::BurstConfig`]) — how
    /// much of the loss arrived in correlated trains.
    pub burst_drops: u64,
    /// Frames corrupted by fault injection.
    pub corrupted: u64,
    /// Frames delivered twice by fault injection.
    pub fault_duplicates: u64,
}

/// A frame captured on the wire (when [`SegmentConfig::capture`] is set).
#[derive(Clone, Debug)]
pub struct CapturedFrame {
    /// Instant serialization completed.
    pub at: SimTime,
    /// Sending node and port.
    pub src: (NodeId, PortId),
    /// Frame contents (shared with the delivered copies; refcounted).
    pub data: FrameBuf,
}

#[derive(Debug)]
pub(crate) struct PendingTx {
    pub src: (NodeId, PortId),
    pub frame: FrameBuf,
    /// When the frame was offered to the medium. On the fused delivery
    /// path a queued frame may have been offered *after* its
    /// predecessor's completion (during the propagation window, while
    /// the completion event was still in flight); its serialization then
    /// starts at the offer instant, not the predecessor's completion.
    pub offered_at: SimTime,
}

/// One LAN segment: attachments plus the in-flight transmit state.
pub struct Segment {
    pub(crate) cfg: SegmentConfig,
    /// Attached `(node, port)` pairs in attachment order.
    pub(crate) attachments: Vec<(NodeId, PortId)>,
    /// The frame currently being serialized, if any.
    pub(crate) current: Option<PendingTx>,
    /// Frames waiting behind `current`.
    pub(crate) queue: VecDeque<PendingTx>,
    pub(crate) counters: SegCounters,
    pub(crate) captured: Vec<CapturedFrame>,
    /// True while a chaos script holds the segment down: offers are
    /// dropped (counted in [`SegCounters::down_drops`]); the frame in
    /// flight and the queue drain normally, like a cable pulled
    /// mid-preamble rather than a vaporized switch fabric.
    pub(crate) down: bool,
    /// Gilbert–Elliott burst state: `true` while the medium is in the
    /// bad state. Always `false` for configs without
    /// [`crate::fault::FaultConfig::burst`]; reset to good whenever the
    /// fault config is replaced mid-run.
    pub(crate) burst_bad: bool,
    /// Memoized `(len, serialization_time)` of the last frame: wire
    /// traffic is dominated by a couple of frame sizes, so this skips the
    /// 64-bit division on nearly every transmission.
    ser_memo: core::cell::Cell<(usize, SimDuration)>,
}

impl Segment {
    pub(crate) fn new(cfg: SegmentConfig) -> Self {
        Segment {
            cfg,
            attachments: Vec::new(),
            current: None,
            queue: VecDeque::new(),
            counters: SegCounters::default(),
            captured: Vec::new(),
            down: false,
            burst_bad: false,
            ser_memo: core::cell::Cell::new((usize::MAX, SimDuration::ZERO)),
        }
    }

    /// Time for `len` payload octets plus per-frame overhead on this medium.
    pub(crate) fn serialization_time(&self, len: usize) -> SimDuration {
        let (memo_len, memo_t) = self.ser_memo.get();
        if memo_len == len {
            return memo_t;
        }
        let t = SimDuration::serialization(len + self.cfg.overhead_bytes, self.cfg.bandwidth_bps);
        self.ser_memo.set((len, t));
        t
    }

    /// Offer a frame for transmission. Returns `true` if it was accepted
    /// (either began serializing, in which case the caller must schedule a
    /// `SegTxDone`, or queued) and `false` if the queue was full.
    ///
    /// The boolean pair is `(accepted, started_now)`.
    pub(crate) fn offer(&mut self, tx: PendingTx) -> (bool, bool) {
        if self.current.is_none() {
            self.current = Some(tx);
            (true, true)
        } else if self.queue.len() < self.cfg.queue_cap {
            self.counters.contended += 1;
            self.queue.push_back(tx);
            self.counters.peak_queue = self.counters.peak_queue.max(self.queue.len() as u64);
            (true, false)
        } else {
            self.counters.queue_drops += 1;
            (false, false)
        }
    }

    /// Complete the current transmission; returns it, and moves the next
    /// queued frame (if any) into `current`, returning whether a new
    /// serialization must be scheduled.
    pub(crate) fn complete(&mut self) -> (PendingTx, bool) {
        let done = self
            .current
            .take()
            .expect("SegTxDone with no frame in flight");
        let started_next = if let Some(next) = self.queue.pop_front() {
            self.current = Some(next);
            true
        } else {
            false
        };
        (done, started_next)
    }

    /// Read-only counters.
    pub fn counters(&self) -> &SegCounters {
        &self.counters
    }

    /// Frames currently waiting behind the transmission in flight (the
    /// flight recorder stamps this onto queued offers).
    pub fn queue_depth(&self) -> usize {
        self.queue.len()
    }

    /// The segment's configured transmit-queue capacity.
    pub fn queue_cap(&self) -> usize {
        self.cfg.queue_cap
    }

    /// Captured frames (empty unless capture was enabled).
    pub fn captured(&self) -> &[CapturedFrame] {
        &self.captured
    }

    /// Is the segment scripted down right now?
    pub fn is_down(&self) -> bool {
        self.down
    }

    /// Is the Gilbert–Elliott burst model currently in its bad state?
    /// Always `false` for configs without a burst model.
    pub fn in_burst(&self) -> bool {
        self.burst_bad
    }

    /// Segment name.
    pub fn name(&self) -> &str {
        &self.cfg.name
    }

    /// Attached `(node, port)` pairs.
    pub fn attachments(&self) -> &[(NodeId, PortId)] {
        &self.attachments
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tx(n: usize) -> PendingTx {
        PendingTx {
            src: (NodeId(n), PortId(0)),
            frame: FrameBuf::from(vec![0u8; 10]),
            offered_at: SimTime::ZERO,
        }
    }

    #[test]
    fn offer_starts_when_idle_then_queues() {
        let mut seg = Segment::new(SegmentConfig::default());
        assert_eq!(seg.offer(tx(0)), (true, true));
        assert_eq!(seg.offer(tx(1)), (true, false));
        assert_eq!(seg.offer(tx(2)), (true, false));
        assert_eq!(seg.counters.peak_queue, 2, "two frames waited at the peak");
        let (done, more) = seg.complete();
        assert_eq!(done.src.0, NodeId(0));
        assert!(more);
        let (done, more) = seg.complete();
        assert_eq!(done.src.0, NodeId(1));
        assert!(more);
        let (done, more) = seg.complete();
        assert_eq!(done.src.0, NodeId(2));
        assert!(!more);
    }

    #[test]
    fn queue_cap_drops() {
        let mut seg = Segment::new(SegmentConfig {
            queue_cap: 1,
            ..Default::default()
        });
        assert_eq!(seg.offer(tx(0)), (true, true)); // in flight
        assert_eq!(seg.offer(tx(1)), (true, false)); // queued
        assert_eq!(seg.offer(tx(2)), (false, false)); // dropped
        assert_eq!(seg.counters.queue_drops, 1);
    }

    #[test]
    fn serialization_includes_overhead() {
        let seg = Segment::new(SegmentConfig {
            bandwidth_bps: 100_000_000,
            overhead_bytes: 24,
            ..Default::default()
        });
        // (1500 + 24) * 8 / 100e6 = 121.92 us
        assert_eq!(seg.serialization_time(1500).as_ns(), 121_920);
    }

    #[test]
    #[should_panic(expected = "no frame in flight")]
    fn complete_without_current_panics() {
        let mut seg = Segment::new(SegmentConfig::default());
        let _ = seg.complete();
    }
}
