//! The [`World`]: owns nodes, segments, the event queue and the clock, and
//! drives the whole simulation.
//!
//! # Dispatch model
//!
//! Nodes are stored as `Option<Box<dyn Node>>`. To deliver an event the
//! world *takes* the node out of its slot, builds a [`Ctx`] borrowing the
//! world core, invokes the callback, and puts the node back. This gives the
//! node full mutable access to simulator services without aliasing itself.

use crate::chaos::ChaosEv;
use crate::event::{Event, EventKind, EventQueue};
use crate::fault::FaultOutcome;
use crate::framebuf::FrameBuf;
use crate::node::{Node, NodeId, PortId, TimerHandle, TimerToken};
use crate::probe::{Probe, ProbeRecord};
use crate::rng::Xoshiro;
use crate::segment::{CapturedFrame, PendingTx, SegId, Segment, SegmentConfig};
use crate::time::{SimDuration, SimTime};
use crate::trace::{Counters, Trace};

/// Everything in the world except the nodes themselves (so a node callback
/// can borrow this mutably while the node is checked out of its slot).
pub struct WorldCore {
    time: SimTime,
    queue: EventQueue,
    segments: Vec<Segment>,
    /// Per node: the segment each port attaches to, in port order.
    node_ports: Vec<Vec<SegId>>,
    node_names: Vec<String>,
    rng: Xoshiro,
    next_timer_id: u64,
    cancelled_timers: std::collections::HashSet<u64>,
    live_timers: u64,
    pub(crate) trace: Trace,
    pub(crate) counters: Counters,
    /// The flight recorder (disarmed by default; see [`crate::probe`]).
    /// Records only — arming it never changes event order or RNG draws.
    pub(crate) probe: Probe,
    /// Frames handed to `Ctx::send` (before segment queueing).
    pub frames_sent: u64,
    /// Frame deliveries to node ports.
    pub frames_delivered: u64,
    /// Per node: true while a chaos script holds it crashed. A crashed
    /// node receives no frames and none of its pending timers fire.
    crashed: Vec<bool>,
    /// How many nodes are currently crashed — the delivery and timer hot
    /// paths stay one compare (`crashed_count != 0`) in the common
    /// chaos-free case.
    crashed_count: usize,
    /// Reusable listener scratch for `deliver_all` (kept across events so
    /// the delivery path never allocates).
    deliver_scratch: Vec<(NodeId, PortId)>,
    /// Recycled frame backing buffers: builders take from here
    /// ([`Ctx::take_buf`]) and dead frames return here
    /// ([`Ctx::recycle_frame`]), so steady-state traffic reuses a small
    /// working set of allocations instead of hitting the allocator per
    /// frame.
    frame_pool: Vec<Vec<u8>>,
}

/// Upper bound on pooled buffers (a few per node is plenty; beyond that
/// the pool would just pin memory).
const FRAME_POOL_CAP: usize = 64;

impl WorldCore {
    /// The current simulated time.
    pub fn now(&self) -> SimTime {
        self.time
    }

    /// The deterministic RNG.
    pub fn rng(&mut self) -> &mut Xoshiro {
        &mut self.rng
    }

    /// Experiment counters.
    pub fn counters(&self) -> &Counters {
        &self.counters
    }

    /// Experiment counters, mutable.
    pub fn counters_mut(&mut self) -> &mut Counters {
        &mut self.counters
    }

    /// Take a cleared buffer of at least `cap` capacity from the frame
    /// pool (or a fresh one).
    fn take_buf(&mut self, cap: usize) -> Vec<u8> {
        // Scan a few recent entries for one big enough; the pool turns
        // over the same frame-sized buffers in steady state.
        let n = self.frame_pool.len();
        for i in (n.saturating_sub(4)..n).rev() {
            if self.frame_pool[i].capacity() >= cap {
                return self.frame_pool.swap_remove(i);
            }
        }
        Vec::with_capacity(cap)
    }

    /// Return a dead frame's backing buffer to the pool (no-op when the
    /// storage is still shared or the pool is full).
    fn recycle_frame(&mut self, frame: FrameBuf) {
        if self.frame_pool.len() < FRAME_POOL_CAP {
            if let Ok(mut v) = frame.try_into_vec() {
                v.clear();
                self.frame_pool.push(v);
            }
        }
    }

    fn send_on_segment(&mut self, seg_id: SegId, src: (NodeId, PortId), frame: FrameBuf) {
        self.frames_sent += 1;
        if self.segments[seg_id.0].down {
            // The segment is scripted down: the offer never reaches the
            // medium. Frames already serializing or queued keep draining
            // (their `SegTxDone`/`SegDeliver` events are in flight and
            // clearing `current` under them would desynchronize the
            // completion bookkeeping).
            self.segments[seg_id.0].counters.down_drops += 1;
            self.recycle_frame(frame);
            return;
        }
        let seg = &mut self.segments[seg_id.0];
        let ser = seg.serialization_time(frame.len());
        let len = frame.len() as u32;
        let (accepted, started) = seg.offer(PendingTx {
            src,
            frame,
            offered_at: self.time,
        });
        if self.probe.is_armed() {
            let record = if accepted {
                ProbeRecord::FrameOffered {
                    seg: seg_id,
                    src,
                    len,
                    queued: !started,
                    depth: self.segments[seg_id.0].queue_depth() as u32,
                }
            } else {
                ProbeRecord::QueueDrop {
                    seg: seg_id,
                    src,
                    len,
                }
            };
            self.probe.record(self.time, record);
        }
        if accepted && started {
            self.schedule_completion(seg_id, self.time + ser);
        }
    }

    /// Schedule the completion of the transmission now starting on
    /// `seg_id`, finishing at `done_at`. Transparent, uncaptured segments
    /// take the fused completion+delivery event (fires at
    /// `done_at + propagation`, one event per wire frame); segments with
    /// fault injection or capture keep the two-event path, whose event
    /// times anchor the RNG draw order and capture timestamps.
    fn schedule_completion(&mut self, seg_id: SegId, done_at: SimTime) {
        let seg = &self.segments[seg_id.0];
        if seg.cfg.fault.is_transparent() && !seg.cfg.capture {
            self.queue.push(
                done_at + seg.cfg.propagation,
                EventKind::SegDeliver {
                    seg: seg_id,
                    n_att: seg.attachments.len() as u32,
                },
            );
        } else {
            self.queue
                .push(done_at, EventKind::SegTxDone { seg: seg_id });
        }
    }
}

/// The services available to a node during a callback.
pub struct Ctx<'w> {
    core: &'w mut WorldCore,
    node: NodeId,
}

impl<'w> Ctx<'w> {
    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.core.time
    }

    /// This node's id.
    pub fn node_id(&self) -> NodeId {
        self.node
    }

    /// Number of ports this node has.
    pub fn num_ports(&self) -> usize {
        self.core.node_ports[self.node.0].len()
    }

    /// The segment a port attaches to.
    pub fn port_segment(&self, port: PortId) -> SegId {
        self.core.node_ports[self.node.0][port.0]
    }

    /// Transmit a frame out of `port`. The frame contends for the segment's
    /// medium; delivery to every other attached port happens after
    /// serialization and propagation. Accepts anything convertible into a
    /// [`FrameBuf`] (a `FrameBuf` clone is a refcount bump, so re-sending
    /// a received or prebuilt frame never copies). Panics if the port
    /// does not exist.
    pub fn send(&mut self, port: PortId, frame: impl Into<FrameBuf>) {
        let seg = self.core.node_ports[self.node.0]
            .get(port.0)
            .copied()
            .unwrap_or_else(|| panic!("node {} has no port {}", self.node, port));
        self.core
            .send_on_segment(seg, (self.node, port), frame.into());
    }

    /// Schedule a timer `after` from now carrying `token`.
    pub fn schedule(&mut self, after: SimDuration, token: TimerToken) -> TimerHandle {
        let id = self.core.next_timer_id;
        self.core.next_timer_id += 1;
        self.core.live_timers += 1;
        let deadline = self.core.time + after;
        self.core.queue.push(
            deadline,
            EventKind::Timer {
                node: self.node,
                token,
                id,
            },
        );
        if self.core.probe.is_armed() {
            self.core.probe.record(
                self.core.time,
                ProbeRecord::TimerArm {
                    node: self.node,
                    id,
                    deadline,
                },
            );
        }
        TimerHandle(id)
    }

    /// Cancel a previously scheduled timer. Cancelling an already-fired or
    /// already-cancelled timer is a no-op.
    pub fn cancel(&mut self, handle: TimerHandle) {
        self.core.cancelled_timers.insert(handle.0);
        if self.core.probe.is_armed() {
            self.core.probe.record(
                self.core.time,
                ProbeRecord::TimerCancel {
                    node: self.node,
                    id: handle.0,
                },
            );
        }
    }

    /// The deterministic RNG.
    pub fn rng(&mut self) -> &mut Xoshiro {
        self.core.rng()
    }

    /// Append a trace entry attributed to this node.
    pub fn trace(&mut self, msg: impl Into<String>) {
        let at = self.core.time;
        let node = self.node;
        self.core.trace.push(at, Some(node), msg.into());
    }

    /// Bump an experiment counter.
    pub fn bump(&mut self, key: &str, n: u64) {
        self.core.counters.bump(key, n);
    }

    /// Take a cleared byte buffer of at least `cap` capacity from the
    /// world's frame pool — the allocation-free way to start building a
    /// frame. Pair with [`Ctx::recycle_frame`].
    pub fn take_buf(&mut self, cap: usize) -> Vec<u8> {
        self.core.take_buf(cap)
    }

    /// Hand a finished-with frame back to the world's frame pool. Only
    /// reclaims storage the caller exclusively owns (one cheap refcount
    /// check otherwise), so it is always safe to call on the last handle
    /// a node holds.
    pub fn recycle_frame(&mut self, frame: FrameBuf) {
        self.core.recycle_frame(frame);
    }

    /// Read an experiment counter.
    pub fn counter(&self, key: &str) -> u64 {
        self.core.counters.get(key)
    }

    /// Is the flight recorder armed? Nodes with recording hooks of their
    /// own can skip argument preparation entirely when it is not.
    #[inline(always)]
    pub fn probe_armed(&self) -> bool {
        self.core.probe.is_armed()
    }

    /// Record a bridge forwarding decision in the flight recorder
    /// (no-op when disarmed; never perturbs the simulation).
    #[inline]
    pub fn probe_decision(
        &mut self,
        port: PortId,
        verdict: &'static str,
        cache_hit: bool,
        generation: u64,
    ) {
        if self.core.probe.is_armed() {
            self.core.probe.record(
                self.core.time,
                ProbeRecord::Decision {
                    node: self.node,
                    port,
                    verdict,
                    cache_hit,
                    generation,
                },
            );
        }
    }

    /// Record the start of a switchlet invocation on this node.
    #[inline]
    pub fn probe_exec_begin(&mut self) {
        if self.core.probe.is_armed() {
            self.core
                .probe
                .record(self.core.time, ProbeRecord::ExecBegin { node: self.node });
        }
    }

    /// Record the end of a switchlet invocation with its metered cost
    /// (pass zeros when the invocation trapped).
    #[inline]
    pub fn probe_exec_end(&mut self, fuel: u64, host_calls: u64) {
        if self.core.probe.is_armed() {
            self.core.probe.record(
                self.core.time,
                ProbeRecord::ExecEnd {
                    node: self.node,
                    fuel,
                    host_calls,
                },
            );
        }
    }

    /// Record a free-form application phase mark (e.g. `"ttcp.start"`).
    #[inline]
    pub fn probe_mark(&mut self, label: &'static str) {
        if self.core.probe.is_armed() {
            self.core.probe.record(
                self.core.time,
                ProbeRecord::Mark {
                    node: self.node,
                    label,
                },
            );
        }
    }

    /// Record that this node's watchdog quarantined a switchlet and
    /// rolled its data plane back.
    #[inline]
    pub fn probe_quarantine(&mut self) {
        if self.core.probe.is_armed() {
            self.core
                .probe
                .record(self.core.time, ProbeRecord::Quarantine { node: self.node });
        }
    }

    /// Record that this node's bounded learning table evicted an entry
    /// under pressure from `port`.
    #[inline]
    pub fn probe_learn_evict(&mut self, port: PortId) {
        if self.core.probe.is_armed() {
            self.core.probe.record(
                self.core.time,
                ProbeRecord::LearnEvict {
                    node: self.node,
                    port,
                },
            );
        }
    }

    /// Record that this node's bounded learning table rejected a new
    /// source arriving on `port`.
    #[inline]
    pub fn probe_learn_reject(&mut self, port: PortId) {
        if self.core.probe.is_armed() {
            self.core.probe.record(
                self.core.time,
                ProbeRecord::LearnReject {
                    node: self.node,
                    port,
                },
            );
        }
    }

    /// Record that storm control suppressed `port` on this node.
    #[inline]
    pub fn probe_port_suppressed(&mut self, port: PortId) {
        if self.core.probe.is_armed() {
            self.core.probe.record(
                self.core.time,
                ProbeRecord::PortSuppressed {
                    node: self.node,
                    port,
                },
            );
        }
    }

    /// Record that a storm-control hold-down on `port` expired and the
    /// port re-enabled.
    #[inline]
    pub fn probe_port_released(&mut self, port: PortId) {
        if self.core.probe.is_armed() {
            self.core.probe.record(
                self.core.time,
                ProbeRecord::PortReleased {
                    node: self.node,
                    port,
                },
            );
        }
    }

    /// Record that BPDU guard err-disabled `port` on this node.
    #[inline]
    pub fn probe_bpdu_guard(&mut self, port: PortId) {
        if self.core.probe.is_armed() {
            self.core.probe.record(
                self.core.time,
                ProbeRecord::BpduGuardTrip {
                    node: self.node,
                    port,
                },
            );
        }
    }
}

/// One segment's identity and wire counters inside a [`WorldStats`]
/// snapshot, in segment-id order.
#[derive(Clone, Debug)]
pub struct SegmentStats {
    /// The segment's configured name.
    pub name: String,
    /// Its wire counters at snapshot time.
    pub counters: crate::segment::SegCounters,
}

/// A point-in-time copy of the world's frame accounting, taken with
/// [`World::stats`]. Snapshots are plain data: experiment harnesses diff
/// two of them to measure a window without touching simulator internals.
#[derive(Clone, Debug)]
pub struct WorldStats {
    /// Frames handed to `Ctx::send` across the whole run.
    pub frames_sent: u64,
    /// Frame deliveries to node ports across the whole run.
    pub frames_delivered: u64,
    /// Per-segment counters, indexed by `SegId`.
    pub segments: Vec<SegmentStats>,
}

impl WorldStats {
    /// Frames fully serialized onto any wire.
    pub fn total_tx_frames(&self) -> u64 {
        self.segments.iter().map(|s| s.counters.tx_frames).sum()
    }

    /// Frames dropped by fault injection on any segment.
    pub fn total_fault_drops(&self) -> u64 {
        self.segments.iter().map(|s| s.counters.fault_drops).sum()
    }

    /// Frames duplicated by fault injection on any segment.
    pub fn total_fault_duplicates(&self) -> u64 {
        self.segments
            .iter()
            .map(|s| s.counters.fault_duplicates)
            .sum()
    }

    /// Frames dropped on any segment because its transmit queue was full.
    pub fn total_queue_drops(&self) -> u64 {
        self.segments.iter().map(|s| s.counters.queue_drops).sum()
    }
}

/// The simulation world.
pub struct World {
    core: WorldCore,
    nodes: Vec<Option<Box<dyn Node>>>,
    /// Nodes `0..started` have had their `on_start` scheduled.
    started: usize,
}

impl World {
    /// Create a world with the given RNG seed.
    pub fn new(seed: u64) -> Self {
        World {
            core: WorldCore {
                time: SimTime::ZERO,
                queue: EventQueue::new(),
                segments: Vec::new(),
                node_ports: Vec::new(),
                node_names: Vec::new(),
                rng: Xoshiro::seed_from_u64(seed),
                next_timer_id: 0,
                cancelled_timers: std::collections::HashSet::new(),
                live_timers: 0,
                trace: Trace::new(65_536),
                counters: Counters::default(),
                probe: Probe::new(),
                frames_sent: 0,
                frames_delivered: 0,
                crashed: Vec::new(),
                crashed_count: 0,
                deliver_scratch: Vec::new(),
                frame_pool: Vec::new(),
            },
            nodes: Vec::new(),
            started: 0,
        }
    }

    /// Rewind this world to the state `World::new(seed)` produces while
    /// **keeping its expensive allocations**: the event queue's heap,
    /// payload slab and now-lane, the frame pool, the delivery scratch,
    /// and the capacity of the node and segment tables. Sweep harnesses
    /// run many `(topology, workload, seed)` worlds back to back in one
    /// worker; resetting instead of reconstructing means the steady
    /// state stops paying construction allocations per scenario.
    ///
    /// Observable behavior after a reset is identical to a fresh world:
    /// the clock rewinds to zero, the RNG is reseeded, timer ids and
    /// event sequence numbers restart, and no node, segment, attachment,
    /// trace entry or counter survives. (`tests/scenario_exec.rs` proves
    /// this at the report-byte and trace-digest level.)
    pub fn reset(&mut self, seed: u64) {
        self.core.time = SimTime::ZERO;
        self.core.queue.clear();
        self.core.segments.clear();
        self.core.node_ports.clear();
        self.core.node_names.clear();
        self.core.rng = Xoshiro::seed_from_u64(seed);
        self.core.next_timer_id = 0;
        self.core.cancelled_timers.clear();
        self.core.live_timers = 0;
        self.core.trace.reset();
        self.core.counters.clear();
        // Probe state (records *and* the armed flag) must not leak into
        // the next scenario: a reused world starts disarmed, like a fresh
        // one.
        self.core.probe.reset();
        self.core.frames_sent = 0;
        self.core.frames_delivered = 0;
        // Chaos state must not leak into the next scenario: a pooled
        // world starts with every node alive, exactly like a fresh one.
        // (Per-segment fault configs and down flags clear with
        // `segments` above.)
        self.core.crashed.clear();
        self.core.crashed_count = 0;
        // `deliver_scratch` and `frame_pool` survive deliberately: they
        // are pure caches, invisible to simulation behavior.
        self.nodes.clear();
        self.started = 0;
    }

    /// Size the node and segment tables for a topology about to be built
    /// (`nodes` total nodes, `segments` total segments), so construction
    /// of a large world never reallocates them incrementally.
    pub fn reserve_topology(&mut self, nodes: usize, segments: usize) {
        self.nodes.reserve(nodes.saturating_sub(self.nodes.len()));
        let want = |len: usize| nodes.saturating_sub(len);
        self.core
            .node_ports
            .reserve(want(self.core.node_ports.len()));
        self.core
            .node_names
            .reserve(want(self.core.node_names.len()));
        self.core
            .segments
            .reserve(segments.saturating_sub(self.core.segments.len()));
    }

    /// Add a LAN segment.
    pub fn add_segment(&mut self, cfg: SegmentConfig) -> SegId {
        let id = SegId(self.core.segments.len());
        self.core.segments.push(Segment::new(cfg));
        id
    }

    /// Add a node. Its `on_start` runs when [`World::start`] is called.
    pub fn add_node<N: Node>(&mut self, node: N) -> NodeId {
        let id = NodeId(self.nodes.len());
        self.core.node_names.push(node.name().to_owned());
        self.nodes.push(Some(Box::new(node)));
        self.core.node_ports.push(Vec::new());
        self.core.crashed.push(false);
        id
    }

    /// Attach `node` to `seg`; returns the new port's id (ports number from
    /// 0 in attachment order, like `eth0`, `eth1`, ...).
    pub fn attach(&mut self, node: NodeId, seg: SegId) -> PortId {
        let ports = &mut self.core.node_ports[node.0];
        let port = PortId(ports.len());
        ports.push(seg);
        self.core.segments[seg.0].attachments.push((node, port));
        port
    }

    /// Schedule `on_start` for every node that has not started yet (in
    /// node order, at the current time). Called implicitly by the run
    /// methods, so nodes added mid-simulation start when the world next
    /// runs. Also sizes the event queue from the topology (a few pending
    /// events per node and segment) so the steady state never grows it.
    pub fn start(&mut self) {
        let hint = self.nodes.len() * 4 + self.core.segments.len() * 2;
        self.core.queue.reserve(hint);
        let now = self.core.time;
        for i in self.started..self.nodes.len() {
            self.core.queue.push(now, EventKind::Start(NodeId(i)));
        }
        self.started = self.nodes.len();
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.core.time
    }

    /// Process one event. Returns `false` when the queue is empty.
    pub fn step(&mut self) -> bool {
        let Some(Event { at, kind, .. }) = self.core.queue.pop() else {
            return false;
        };
        self.dispatch(at, kind);
        true
    }

    /// Process one event if it is due at or before `bound` (fused
    /// peek-and-pop: the run loop's hot path compares the queue heads
    /// once per event instead of twice).
    fn step_at_or_before(&mut self, bound: SimTime) -> bool {
        let Some(Event { at, kind, .. }) = self.core.queue.pop_at_or_before(bound) else {
            return false;
        };
        self.dispatch(at, kind);
        true
    }

    fn dispatch(&mut self, at: SimTime, kind: EventKind) {
        debug_assert!(at >= self.core.time, "event queue went backwards");
        self.core.time = at;
        match kind {
            EventKind::Start(node) => {
                self.with_node(node, |n, ctx| n.on_start(ctx));
            }
            EventKind::DeliverAll(d) => self.deliver_all(d.seg, d.src, d.n_att as usize, d.frame),
            EventKind::Timer { node, token, id } => {
                self.core.live_timers -= 1;
                // Cancellations are rare; skip the hash lookup entirely
                // when no timer is pending cancellation.
                if !self.core.cancelled_timers.is_empty() && self.core.cancelled_timers.remove(&id)
                {
                    // Cancelled; skip.
                } else if self.core.crashed_count != 0 && self.core.crashed[node.0] {
                    // The node is crashed: its pending timers die
                    // silently, like RAM losing power.
                } else {
                    if self.core.probe.is_armed() {
                        self.core
                            .probe
                            .record(at, ProbeRecord::TimerFire { node, id });
                    }
                    self.with_node(node, |n, ctx| n.on_timer(ctx, token));
                }
            }
            EventKind::SegTxDone { seg } => self.seg_tx_done(seg),
            EventKind::SegDeliver { seg, n_att } => self.seg_deliver(seg, n_att as usize),
            EventKind::Chaos(ev) => match ev {
                ChaosEv::LinkDown(seg) => self.set_link_down(seg, true),
                ChaosEv::LinkUp(seg) => self.set_link_down(seg, false),
                ChaosEv::NodeCrash(node) => self.crash_node(node),
                ChaosEv::NodeRestart(node) => self.restart_node(node),
            },
        }
    }

    /// A segment finished serializing a frame: start the next queued
    /// transmission, run fault injection, and fan the frame out to every
    /// listener with a single batched event per delivered copy.
    ///
    /// The whole path is allocation-free: the fault configuration is read
    /// in place (`segments` and `rng` are disjoint fields, so the borrows
    /// split), corruption is the one copy-on-write point, and listeners
    /// are enumerated at delivery time from the segment's attachment list
    /// instead of being collected into a scratch vector here.
    fn seg_tx_done(&mut self, seg_id: SegId) {
        let now = self.core.time;
        let core = &mut self.core;
        let seg = &mut core.segments[seg_id.0];
        let (done, started_next) = seg.complete();
        seg.counters.tx_frames += 1;
        seg.counters.tx_bytes += done.frame.len() as u64;
        if core.probe.is_armed() {
            let ser_ns = core.segments[seg_id.0]
                .serialization_time(done.frame.len())
                .as_ns();
            core.probe.record(
                now,
                ProbeRecord::WireTx {
                    seg: seg_id,
                    src: done.src,
                    len: done.frame.len() as u32,
                    ser_ns,
                },
            );
        }
        let seg = &mut core.segments[seg_id.0];
        if started_next {
            let next_len = seg
                .current
                .as_ref()
                .expect("started_next implies a current frame")
                .frame
                .len();
            let ser = seg.serialization_time(next_len);
            core.schedule_completion(seg_id, now + ser);
        }
        // Fault injection on the completed frame, drawn from the world
        // RNG; applied by reference, no per-frame clone of the config.
        // The burst state threads through as a disjoint field borrow.
        let seg = &mut core.segments[seg_id.0];
        let wire_len = done.frame.len() as u32;
        let verdict = seg
            .cfg
            .fault
            .apply_stateful(done.frame, &mut core.rng, &mut seg.burst_bad);
        if let Some(bad) = verdict.flipped {
            core.probe
                .record(now, ProbeRecord::FaultBurst { seg: seg_id, bad });
        }
        if verdict.corrupted {
            seg.counters.corrupted += 1;
            core.probe.record(
                now,
                ProbeRecord::FaultCorrupt {
                    seg: seg_id,
                    len: wire_len,
                },
            );
        }
        let (frame, copies) = match verdict.outcome {
            FaultOutcome::Deliver(f) => (f, 1),
            FaultOutcome::Duplicate(f) => {
                seg.counters.fault_duplicates += 1;
                core.probe.record(
                    now,
                    ProbeRecord::FaultDuplicate {
                        seg: seg_id,
                        len: wire_len,
                    },
                );
                (f, 2)
            }
            FaultOutcome::Drop => {
                seg.counters.fault_drops += 1;
                if verdict.burst_dropped {
                    seg.counters.burst_drops += 1;
                }
                core.probe.record(
                    now,
                    ProbeRecord::FaultDrop {
                        seg: seg_id,
                        len: wire_len,
                    },
                );
                return;
            }
        };
        if seg.cfg.capture {
            seg.captured.push(CapturedFrame {
                at: now,
                src: done.src,
                data: frame.clone(),
            });
        }
        let prop = seg.cfg.propagation;
        // The sender is always among the attachments, so each copy goes
        // to `n_att - 1` listeners. Count deliveries when the copies are
        // committed (as the unbatched representation did).
        let n_att = seg.attachments.len();
        seg.counters.deliveries += copies * (n_att as u64 - 1);
        for _ in 0..copies {
            core.queue.push(
                now + prop,
                EventKind::DeliverAll(Box::new(crate::event::DeliverAll {
                    seg: seg_id,
                    src: done.src,
                    n_att: n_att as u32,
                    frame: frame.clone(),
                })),
            );
        }
    }

    /// Fused completion + delivery for a frame whose segment was
    /// transparent and uncaptured when it started serializing. Fires at
    /// completion + propagation; the completion bookkeeping (counters,
    /// starting the next queued transmission) is timing-equivalent to the
    /// two-event path: the next frame's serialization starts at the later
    /// of the *completion* instant (`now − propagation`) and its own
    /// offer time (a frame offered while the completed frame's delivery
    /// was still propagating found a free medium). The fault
    /// configuration is re-checked here so an injection enabled while the
    /// frame was in flight is still applied. One diagnostic-only
    /// divergence remains: such propagation-window offers count as
    /// `contended` (they pass through the queue for one event) where the
    /// two-event path would not have counted them — delivery timing and
    /// ordering are unaffected.
    fn seg_deliver(&mut self, seg_id: SegId, n_att: usize) {
        let now = self.core.time;
        let done;
        let mut next_done: Option<SimTime> = None;
        {
            let seg = &mut self.core.segments[seg_id.0];
            let prop = seg.cfg.propagation;
            let (d, started_next) = seg.complete();
            seg.counters.tx_frames += 1;
            seg.counters.tx_bytes += d.frame.len() as u64;
            done = d;
            if self.core.probe.is_armed() {
                // Stamp the wire-tx at the completion instant (this fused
                // event fires one propagation delay later).
                let completion = SimTime::from_ns(now.as_ns() - prop.as_ns());
                let ser_ns = seg.serialization_time(done.frame.len()).as_ns();
                self.core.probe.record(
                    completion,
                    ProbeRecord::WireTx {
                        seg: seg_id,
                        src: done.src,
                        len: done.frame.len() as u32,
                        ser_ns,
                    },
                );
            }
            if started_next {
                let next = seg
                    .current
                    .as_ref()
                    .expect("started_next implies a current frame");
                let ser = seg.serialization_time(next.frame.len());
                // The next frame starts serializing when the medium frees
                // (the completion instant, one propagation delay ago) or
                // when it was offered — whichever is later: a frame
                // offered during the propagation window found a free
                // medium and starts at its own offer time, exactly as it
                // would have on the two-event path.
                let completion = SimTime::from_ns(now.as_ns() - prop.as_ns());
                let start = completion.max(next.offered_at);
                next_done = Some(start + ser);
            }
        }
        if let Some(done_at) = next_done {
            self.core.schedule_completion(seg_id, done_at);
        }
        let core = &mut self.core;
        let seg = &mut core.segments[seg_id.0];
        let wire_len = done.frame.len() as u32;
        let verdict = seg
            .cfg
            .fault
            .apply_stateful(done.frame, &mut core.rng, &mut seg.burst_bad);
        if let Some(bad) = verdict.flipped {
            core.probe
                .record(now, ProbeRecord::FaultBurst { seg: seg_id, bad });
        }
        if verdict.corrupted {
            seg.counters.corrupted += 1;
            core.probe.record(
                now,
                ProbeRecord::FaultCorrupt {
                    seg: seg_id,
                    len: wire_len,
                },
            );
        }
        let (frame, copies) = match verdict.outcome {
            FaultOutcome::Deliver(f) => (f, 1u64),
            FaultOutcome::Duplicate(f) => {
                seg.counters.fault_duplicates += 1;
                core.probe.record(
                    now,
                    ProbeRecord::FaultDuplicate {
                        seg: seg_id,
                        len: wire_len,
                    },
                );
                (f, 2)
            }
            FaultOutcome::Drop => {
                seg.counters.fault_drops += 1;
                if verdict.burst_dropped {
                    seg.counters.burst_drops += 1;
                }
                core.probe.record(
                    now,
                    ProbeRecord::FaultDrop {
                        seg: seg_id,
                        len: wire_len,
                    },
                );
                return;
            }
        };
        seg.counters.deliveries += copies * (n_att as u64 - 1);
        let src = done.src;
        let mut frame = Some(frame);
        for i in 0..copies {
            let f = if i + 1 == copies {
                frame.take().expect("one handle per copy")
            } else {
                frame.clone().expect("one handle per copy")
            };
            self.deliver_all(seg_id, src, n_att, f);
        }
    }

    /// Deliver one wire frame to every listener of `seg` (the first
    /// `n_att` attachments except `src`, in attachment order), all
    /// sharing the same refcounted buffer. The listener list is staged in
    /// a scratch buffer reused across events, so fan-out allocates
    /// nothing and the per-listener loop does not re-index the segment
    /// table while nodes are borrowed.
    fn deliver_all(&mut self, seg: SegId, src: (NodeId, PortId), n_att: usize, frame: FrameBuf) {
        // Point-to-point fast path: two attachments (the dominant shape on
        // line topologies) need no listener staging at all.
        if n_att == 2 {
            let atts = &self.core.segments[seg.0].attachments;
            let (a, b) = (atts[0], atts[1]);
            if a == src || b == src {
                let target = if a == src { b } else { a };
                if self.core.crashed_count != 0 && self.core.crashed[target.0 .0] {
                    // The listener is crashed: the frame falls on the
                    // floor (never counted as delivered).
                    self.core.recycle_frame(frame);
                    return;
                }
                self.core.frames_delivered += 1;
                if self.core.probe.is_armed() {
                    self.core.probe.record(
                        self.core.time,
                        ProbeRecord::Deliver {
                            seg,
                            dst: target,
                            len: frame.len() as u32,
                        },
                    );
                }
                self.with_node(target.0, |n, ctx| n.on_frame(ctx, target.1, frame));
                return;
            }
            // src not among the attachments (cannot happen with the
            // attach-only topology API): take the general path.
        }
        let mut listeners = std::mem::take(&mut self.core.deliver_scratch);
        listeners.clear();
        listeners.extend_from_slice(&self.core.segments[seg.0].attachments[..n_att]);
        let src_idx = listeners.iter().position(|&a| a == src);
        // The *last* listener receives the event's own handle (moved, not
        // cloned): on single-listener segments the receiving node ends up
        // holding the only reference, so it can recycle the buffer.
        // Crashed listeners hear nothing, so they are excluded here too;
        // if every listener is crashed, the trailing recycle below
        // reclaims the untaken handle.
        let any_crashed = self.core.crashed_count != 0;
        let last = (0..listeners.len()).rev().find(|&i| {
            Some(i) != src_idx && !(any_crashed && self.core.crashed[listeners[i].0 .0])
        });
        let armed = self.core.probe.is_armed();
        let mut frame = Some(frame);
        for (i, &(node, port)) in listeners.iter().enumerate() {
            if Some(i) == src_idx || (any_crashed && self.core.crashed[node.0]) {
                continue;
            }
            self.core.frames_delivered += 1;
            let f = if Some(i) == last {
                frame.take().expect("last listener visited once")
            } else {
                frame.clone().expect("frame present until last listener")
            };
            if armed {
                self.core.probe.record(
                    self.core.time,
                    ProbeRecord::Deliver {
                        seg,
                        dst: (node, port),
                        len: f.len() as u32,
                    },
                );
            }
            self.with_node(node, |n, ctx| n.on_frame(ctx, port, f));
        }
        // No listeners at all: the wire frame dies here — reclaim it.
        if let Some(f) = frame {
            self.core.recycle_frame(f);
        }
        self.core.deliver_scratch = listeners;
    }

    fn with_node(&mut self, id: NodeId, f: impl FnOnce(&mut dyn Node, &mut Ctx<'_>)) {
        // `nodes` and `core` are disjoint fields, so the node can stay in
        // its slot while the callback borrows the core through `Ctx` (a
        // node callback can only reach the core — never other nodes), and
        // the dispatch path pays no take/put shuffle. `with_ctx` keeps
        // the checkout dance because it hands out typed access.
        let node = self.nodes[id.0]
            .as_deref_mut()
            .unwrap_or_else(|| panic!("node {id} re-entered"));
        let mut ctx = Ctx {
            core: &mut self.core,
            node: id,
        };
        f(node, &mut ctx);
    }

    /// Run until the clock reaches `t` (events at exactly `t` are
    /// processed). The clock is left at `t` even if the queue drains early.
    pub fn run_until(&mut self, t: SimTime) {
        self.start();
        while self.step_at_or_before(t) {}
        if self.core.time < t {
            self.core.time = t;
        }
    }

    /// Run for `d` from the current clock.
    pub fn run_for(&mut self, d: SimDuration) {
        let t = self.core.time + d;
        self.run_until(t);
    }

    /// Run until the event queue is empty or the clock passes `horizon`.
    /// Returns `true` if the queue drained.
    pub fn run_until_idle(&mut self, horizon: SimTime) -> bool {
        self.start();
        loop {
            match self.core.queue.peek_time() {
                None => return true,
                Some(next) if next > horizon => {
                    self.core.time = horizon;
                    return false;
                }
                Some(_) => {
                    self.step();
                }
            }
        }
    }

    /// Number of pending events.
    pub fn pending_events(&self) -> usize {
        self.core.queue.len()
    }

    /// Access a node by concrete type if it is one, `None` otherwise
    /// (how offline tooling sorts a mixed node population into bridges
    /// and hosts without panicking on either).
    pub fn try_node<N: Node>(&self, id: NodeId) -> Option<&N> {
        self.nodes[id.0]
            .as_deref()
            .expect("node checked out")
            .as_any()
            .downcast_ref::<N>()
    }

    /// Access a node by concrete type (e.g. to read results after a run).
    pub fn node<N: Node>(&self, id: NodeId) -> &N {
        self.nodes[id.0]
            .as_deref()
            .expect("node checked out")
            .as_any()
            .downcast_ref::<N>()
            .unwrap_or_else(|| panic!("node {id} is not a {}", core::any::type_name::<N>()))
    }

    /// Mutable access to a node by concrete type.
    pub fn node_mut<N: Node>(&mut self, id: NodeId) -> &mut N {
        self.nodes[id.0]
            .as_deref_mut()
            .expect("node checked out")
            .as_any_mut()
            .downcast_mut::<N>()
            .unwrap_or_else(|| panic!("node {id} is not a {}", core::any::type_name::<N>()))
    }

    /// Invoke a closure with a [`Ctx`] for `id`, outside normal dispatch.
    /// Used by experiment harnesses to poke nodes (e.g. start a workload).
    pub fn with_ctx<N: Node, R>(
        &mut self,
        id: NodeId,
        f: impl FnOnce(&mut N, &mut Ctx<'_>) -> R,
    ) -> R {
        let mut node = self.nodes[id.0]
            .take()
            .unwrap_or_else(|| panic!("node {id} re-entered"));
        let result = {
            let mut ctx = Ctx {
                core: &mut self.core,
                node: id,
            };
            let concrete = node
                .as_any_mut()
                .downcast_mut::<N>()
                .unwrap_or_else(|| panic!("node {id} is not a {}", core::any::type_name::<N>()));
            f(concrete, &mut ctx)
        };
        self.nodes[id.0] = Some(node);
        result
    }

    /// A node's name.
    pub fn node_name(&self, id: NodeId) -> &str {
        &self.core.node_names[id.0]
    }

    /// Total node count.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Segment access.
    pub fn segment(&self, id: SegId) -> &Segment {
        &self.core.segments[id.0]
    }

    /// Replace a segment's fault configuration mid-run. This is the hook
    /// fault/churn scripts use: the new configuration applies to every
    /// frame that completes serialization from now on, drawn from the
    /// world RNG as usual, so scripted runs stay deterministic.
    pub fn set_segment_fault(&mut self, id: SegId, fault: crate::fault::FaultConfig) {
        let seg = &mut self.core.segments[id.0];
        seg.cfg.fault = fault;
        // A fresh config starts from the good state: burst history does
        // not leak across scripted fault windows.
        seg.burst_bad = false;
    }

    /// Schedule a chaos event at absolute time `at` (normally called via
    /// [`crate::chaos::ChaosScript::schedule`], which pushes a whole
    /// script up-front so the event order is fixed before the run).
    pub fn schedule_chaos(&mut self, at: SimTime, ev: ChaosEv) {
        self.core.queue.push(at, EventKind::Chaos(ev));
    }

    /// Take a segment down (`true`) or bring it back up (`false`), now.
    /// While down, offered frames are dropped and counted in
    /// [`crate::SegCounters::down_drops`]; the frame in flight and the
    /// queue drain normally. A no-op if the state already matches.
    pub fn set_link_down(&mut self, id: SegId, down: bool) {
        let seg = &mut self.core.segments[id.0];
        if seg.down == down {
            return;
        }
        seg.down = down;
        let name = seg.cfg.name.clone();
        let now = self.core.time;
        if self.core.probe.is_armed() {
            let record = if down {
                ProbeRecord::LinkDown { seg: id }
            } else {
                ProbeRecord::LinkUp { seg: id }
            };
            self.core.probe.record(now, record);
        }
        let what = if down { "down" } else { "up" };
        self.core
            .trace
            .push(now, None, format!("chaos: link {what}: {name}"));
    }

    /// Crash a node now: mark it dead (no frames delivered, no pending
    /// timers fire) and invoke [`Node::on_crash`] so it discards its
    /// volatile state. A no-op on an already-crashed node.
    pub fn crash_node(&mut self, id: NodeId) {
        if self.core.crashed[id.0] {
            return;
        }
        self.core.crashed[id.0] = true;
        self.core.crashed_count += 1;
        let now = self.core.time;
        if self.core.probe.is_armed() {
            self.core
                .probe
                .record(now, ProbeRecord::NodeCrash { node: id });
        }
        let name = self.core.node_names[id.0].clone();
        self.core
            .trace
            .push(now, None, format!("chaos: crash: {name}"));
        self.with_node(id, |n, ctx| n.on_crash(ctx));
    }

    /// Restart a crashed node cold: mark it alive again and invoke
    /// [`Node::on_restart`]. A no-op on a node that is not crashed.
    pub fn restart_node(&mut self, id: NodeId) {
        if !self.core.crashed[id.0] {
            return;
        }
        self.core.crashed[id.0] = false;
        self.core.crashed_count -= 1;
        let now = self.core.time;
        if self.core.probe.is_armed() {
            self.core
                .probe
                .record(now, ProbeRecord::NodeRestart { node: id });
        }
        let name = self.core.node_names[id.0].clone();
        self.core
            .trace
            .push(now, None, format!("chaos: restart: {name}"));
        self.with_node(id, |n, ctx| n.on_restart(ctx));
    }

    /// Is the node currently crashed?
    pub fn is_crashed(&self, id: NodeId) -> bool {
        self.core.crashed[id.0]
    }

    /// Point-in-time snapshot of the world's frame accounting: run-wide
    /// send/delivery totals plus every segment's wire counters. Scenario
    /// runners read this instead of parsing traces.
    pub fn stats(&self) -> WorldStats {
        WorldStats {
            frames_sent: self.core.frames_sent,
            frames_delivered: self.core.frames_delivered,
            segments: self
                .core
                .segments
                .iter()
                .map(|s| SegmentStats {
                    name: s.cfg.name.clone(),
                    counters: s.counters.clone(),
                })
                .collect(),
        }
    }

    /// The flight recorder.
    pub fn probe(&self) -> &Probe {
        &self.core.probe
    }

    /// The flight recorder, mutable (to arm or disarm it).
    pub fn probe_mut(&mut self) -> &mut Probe {
        &mut self.core.probe
    }

    /// Run-wide trace.
    pub fn trace(&self) -> &Trace {
        &self.core.trace
    }

    /// Run-wide trace, mutable (to enable/disable).
    pub fn trace_mut(&mut self) -> &mut Trace {
        &mut self.core.trace
    }

    /// Experiment counters.
    pub fn counters(&self) -> &Counters {
        &self.core.counters
    }

    /// Frames handed to `send` across the whole run.
    pub fn frames_sent(&self) -> u64 {
        self.core.frames_sent
    }

    /// Frame deliveries across the whole run.
    pub fn frames_delivered(&self) -> u64 {
        self.core.frames_delivered
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Echoes every received frame back out the port it came in on, once.
    struct Echo {
        name: String,
        received: Vec<(SimTime, PortId, FrameBuf)>,
        echo: bool,
    }

    impl Node for Echo {
        fn name(&self) -> &str {
            &self.name
        }
        fn on_frame(&mut self, ctx: &mut Ctx<'_>, port: PortId, frame: FrameBuf) {
            self.received.push((ctx.now(), port, frame.clone()));
            if self.echo {
                self.echo = false;
                ctx.send(port, frame);
            }
        }
        fn as_any(&self) -> &dyn core::any::Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn core::any::Any {
            self
        }
    }

    /// Sends one frame at start, then pings itself with a timer.
    struct Talker {
        sent_timer: bool,
    }

    impl Node for Talker {
        fn name(&self) -> &str {
            "talker"
        }
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            ctx.send(PortId(0), FrameBuf::from_static(b"hello"));
            ctx.schedule(SimDuration::from_ms(5), TimerToken(7));
        }
        fn on_frame(&mut self, _ctx: &mut Ctx<'_>, _port: PortId, _frame: FrameBuf) {}
        fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: TimerToken) {
            assert_eq!(token, TimerToken(7));
            assert_eq!(ctx.now(), SimTime::from_ms(5));
            self.sent_timer = true;
        }
        fn as_any(&self) -> &dyn core::any::Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn core::any::Any {
            self
        }
    }

    fn echo(name: &str, echo: bool) -> Echo {
        Echo {
            name: name.into(),
            received: Vec::new(),
            echo,
        }
    }

    #[test]
    fn frame_reaches_all_other_attachments() {
        let mut w = World::new(1);
        let lan = w.add_segment(SegmentConfig::default());
        let t = w.add_node(Talker { sent_timer: false });
        let a = w.add_node(echo("a", false));
        let b = w.add_node(echo("b", false));
        w.attach(t, lan);
        w.attach(a, lan);
        w.attach(b, lan);
        w.run_until(SimTime::from_ms(10));
        assert_eq!(w.node::<Echo>(a).received.len(), 1);
        assert_eq!(w.node::<Echo>(b).received.len(), 1);
        assert!(w.node::<Talker>(t).sent_timer);
        // Sender must not hear its own frame.
        assert_eq!(w.frames_delivered(), 2);
    }

    #[test]
    fn delivery_time_is_serialization_plus_propagation() {
        let mut w = World::new(1);
        let lan = w.add_segment(SegmentConfig {
            bandwidth_bps: 100_000_000,
            propagation: SimDuration::from_us(1),
            overhead_bytes: 24,
            ..Default::default()
        });
        let t = w.add_node(Talker { sent_timer: false });
        let a = w.add_node(echo("a", false));
        w.attach(t, lan);
        w.attach(a, lan);
        w.run_until(SimTime::from_ms(10));
        let rx = &w.node::<Echo>(a).received;
        assert_eq!(rx.len(), 1);
        // 5 bytes + 24 overhead = 29 bytes = 232 bits @100Mb/s = 2320 ns, + 1000 ns prop.
        assert_eq!(rx[0].0, SimTime::from_ns(2320 + 1000));
    }

    /// A frame offered while the previous frame's delivery is still
    /// propagating (medium already free) must start serializing at its
    /// own offer time — not be backdated to the predecessor's completion
    /// by the fused delivery path.
    #[test]
    fn propagation_window_offer_starts_at_offer_time() {
        struct TwoSender {
            sent_second: bool,
        }
        impl Node for TwoSender {
            fn name(&self) -> &str {
                "two"
            }
            fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                // Frame A: 5 bytes + 24 overhead = 2320 ns serialization;
                // completes at 2320 ns, delivers at 3320 ns (1 us prop).
                ctx.send(PortId(0), FrameBuf::from_static(b"AAAAA"));
                // Fire inside A's propagation window (2320..3320 ns).
                ctx.schedule(SimDuration::from_ns(2800), TimerToken(1));
            }
            fn on_frame(&mut self, _: &mut Ctx<'_>, _: PortId, _: FrameBuf) {}
            fn on_timer(&mut self, ctx: &mut Ctx<'_>, _: TimerToken) {
                self.sent_second = true;
                ctx.send(PortId(0), FrameBuf::from_static(b"BBBBB"));
            }
            fn as_any(&self) -> &dyn core::any::Any {
                self
            }
            fn as_any_mut(&mut self) -> &mut dyn core::any::Any {
                self
            }
        }
        let mut w = World::new(1);
        let lan = w.add_segment(SegmentConfig::default()); // transparent: fused path
        let t = w.add_node(TwoSender { sent_second: false });
        let a = w.add_node(echo("a", false));
        w.attach(t, lan);
        w.attach(a, lan);
        w.run_until(SimTime::from_ms(1));
        let rx = &w.node::<Echo>(a).received;
        assert_eq!(rx.len(), 2);
        assert_eq!(rx[0].0, SimTime::from_ns(2320 + 1000), "frame A");
        // Frame B was offered at 2800 ns to a free medium: it serializes
        // 2800..5120 ns and delivers at 6120 ns. (A backdating bug would
        // start it at A's completion, 2320 ns, delivering 480 ns early.)
        assert_eq!(rx[1].0, SimTime::from_ns(2800 + 2320 + 1000), "frame B");
    }

    #[test]
    fn echo_bounces_once() {
        let mut w = World::new(1);
        let lan = w.add_segment(SegmentConfig::default());
        let t = w.add_node(Talker { sent_timer: false });
        let a = w.add_node(echo("a", true));
        w.attach(t, lan);
        w.attach(a, lan);
        w.run_until(SimTime::from_ms(10));
        // talker's frame delivered to a; a echoed; echo delivered to talker.
        assert_eq!(w.frames_delivered(), 2);
        assert_eq!(w.segment(lan).counters().tx_frames, 2);
    }

    #[test]
    fn cancelled_timer_does_not_fire() {
        struct Canceller;
        impl Node for Canceller {
            fn name(&self) -> &str {
                "c"
            }
            fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                let h = ctx.schedule(SimDuration::from_ms(1), TimerToken(1));
                ctx.cancel(h);
                ctx.schedule(SimDuration::from_ms(2), TimerToken(2));
            }
            fn on_frame(&mut self, _: &mut Ctx<'_>, _: PortId, _: FrameBuf) {}
            fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: TimerToken) {
                assert_eq!(token, TimerToken(2));
                ctx.bump("fired", 1);
            }
            fn as_any(&self) -> &dyn core::any::Any {
                self
            }
            fn as_any_mut(&mut self) -> &mut dyn core::any::Any {
                self
            }
        }
        let mut w = World::new(1);
        w.add_node(Canceller);
        w.run_until(SimTime::from_ms(10));
        assert_eq!(w.counters().get("fired"), 1);
    }

    #[test]
    fn run_until_advances_clock_even_when_idle() {
        let mut w = World::new(1);
        w.run_until(SimTime::from_secs(3));
        assert_eq!(w.now(), SimTime::from_secs(3));
    }

    #[test]
    fn determinism_same_seed_same_counters() {
        fn build_and_run(seed: u64) -> u64 {
            let mut w = World::new(seed);
            let lan = w.add_segment(SegmentConfig {
                fault: crate::fault::FaultConfig {
                    drop_one_in: 3,
                    ..Default::default()
                },
                ..Default::default()
            });
            let t = w.add_node(Talker { sent_timer: false });
            let a = w.add_node(echo("a", true));
            w.attach(t, lan);
            w.attach(a, lan);
            w.run_until(SimTime::from_ms(50));
            w.frames_delivered() + w.segment(lan).counters().fault_drops * 1000
        }
        assert_eq!(build_and_run(99), build_and_run(99));
    }

    /// A burst-configured segment routes through the stateful fault
    /// path: bad-state drops land in both `fault_drops` and
    /// `burst_drops`, state flips emit `FaultBurst` probe records in
    /// matched pairs, and the whole run replays from its seed.
    #[test]
    fn burst_faults_count_flip_and_replay() {
        use crate::probe::{ProbeConfig, ProbeRecord};
        /// Sends one small frame every 100 µs, unconditionally.
        struct Chatter {
            left: u32,
        }
        impl Node for Chatter {
            fn name(&self) -> &str {
                "chatter"
            }
            fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                ctx.schedule(SimDuration::from_us(100), TimerToken(1));
            }
            fn on_frame(&mut self, _: &mut Ctx<'_>, _: PortId, _: FrameBuf) {}
            fn on_timer(&mut self, ctx: &mut Ctx<'_>, _: TimerToken) {
                if self.left > 0 {
                    self.left -= 1;
                    ctx.send(PortId(0), FrameBuf::from_static(b"burst-probe"));
                    ctx.schedule(SimDuration::from_us(100), TimerToken(1));
                }
            }
            fn as_any(&self) -> &dyn core::any::Any {
                self
            }
            fn as_any_mut(&mut self) -> &mut dyn core::any::Any {
                self
            }
        }
        fn build_and_run(seed: u64) -> (u64, u64, u64, Vec<(u64, bool)>) {
            let mut w = World::new(seed);
            w.probe_mut().arm(ProbeConfig::default());
            let lan = w.add_segment(SegmentConfig {
                fault: crate::fault::FaultConfig {
                    burst: Some(crate::fault::BurstConfig {
                        enter_one_in: 8,
                        exit_one_in: 4,
                        bad_drop_one_in: 2,
                        ..Default::default()
                    }),
                    ..Default::default()
                },
                ..Default::default()
            });
            let t = w.add_node(Chatter { left: 400 });
            let a = w.add_node(echo("a", false));
            w.attach(t, lan);
            w.attach(a, lan);
            w.run_until(SimTime::from_ms(50));
            let c = w.segment(lan).counters();
            let flips: Vec<(u64, bool)> = w
                .probe()
                .records()
                .filter_map(|e| match e.record {
                    ProbeRecord::FaultBurst { bad, .. } => Some((e.at.as_ns(), bad)),
                    _ => None,
                })
                .collect();
            (w.frames_delivered(), c.fault_drops, c.burst_drops, flips)
        }
        let (delivered, fault_drops, burst_drops, flips) = build_and_run(7);
        assert!(delivered > 0, "good state must let traffic through");
        assert!(burst_drops > 0, "the bad state must have eaten frames");
        assert_eq!(
            fault_drops, burst_drops,
            "good state injects nothing in this config"
        );
        assert!(!flips.is_empty(), "bursts must have started");
        // Flips strictly alternate, starting with a burst entry.
        for (i, (_, bad)) in flips.iter().enumerate() {
            assert_eq!(*bad, i % 2 == 0, "flip {i} out of order");
        }
        assert_eq!(
            build_and_run(7),
            (delivered, fault_drops, burst_drops, flips)
        );
    }

    /// `World::reset` must be observationally identical to a fresh
    /// world: an RNG-dependent run replays the same counters after a
    /// reset of a dirty world as on a brand-new one.
    #[test]
    fn reset_world_replays_like_fresh() {
        fn drive(w: &mut World) -> (u64, u64, u64, u64) {
            let lan = w.add_segment(SegmentConfig {
                fault: crate::fault::FaultConfig {
                    drop_one_in: 3,
                    duplicate_one_in: 5,
                    ..Default::default()
                },
                ..Default::default()
            });
            let t = w.add_node(Talker { sent_timer: false });
            let a = w.add_node(echo("a", true));
            w.attach(t, lan);
            w.attach(a, lan);
            w.run_until(SimTime::from_ms(50));
            let c = w.segment(lan).counters();
            (
                w.frames_delivered(),
                c.fault_drops,
                c.fault_duplicates,
                w.trace().appended(),
            )
        }
        let mut fresh = World::new(7);
        let want = drive(&mut fresh);

        // Dirty a differently-seeded world, then reset it to seed 7.
        let mut reused = World::new(123);
        let _ = drive(&mut reused);
        reused.reset(7);
        assert_eq!(reused.now(), SimTime::ZERO);
        assert_eq!(reused.pending_events(), 0);
        assert_eq!(reused.num_nodes(), 0);
        assert_eq!(drive(&mut reused), want);
    }

    /// Arming the recorder must not change behavior, and `reset` must
    /// clear both the ring and the armed flag — a reused world starts
    /// with a cold recorder, exactly like a fresh one, and replays the
    /// same run.
    #[test]
    fn reset_clears_armed_probe_state_and_replays() {
        use crate::probe::ProbeConfig;
        fn drive(w: &mut World) -> (u64, u64) {
            let lan = w.add_segment(SegmentConfig {
                fault: crate::fault::FaultConfig {
                    drop_one_in: 3,
                    duplicate_one_in: 5,
                    ..Default::default()
                },
                ..Default::default()
            });
            let t = w.add_node(Talker { sent_timer: false });
            let a = w.add_node(echo("a", true));
            w.attach(t, lan);
            w.attach(a, lan);
            w.run_until(SimTime::from_ms(50));
            (w.frames_delivered(), w.segment(lan).counters().fault_drops)
        }
        let mut fresh = World::new(7);
        let want = drive(&mut fresh);

        let mut reused = World::new(7);
        reused.probe_mut().arm(ProbeConfig { capacity: 1024 });
        let got = drive(&mut reused);
        assert_eq!(got, want, "an armed recorder must not perturb the run");
        assert!(reused.probe().appended() > 0, "the armed run recorded");

        reused.reset(7);
        assert!(!reused.probe().is_armed(), "reset must disarm the probe");
        assert!(reused.probe().is_empty(), "reset must clear the ring");
        assert_eq!(reused.probe().appended(), 0);
        assert_eq!(drive(&mut reused), want, "reset world replays fresh");
        assert_eq!(
            reused.probe().appended(),
            0,
            "a reset (disarmed) recorder must stay silent"
        );
    }

    #[test]
    fn down_segment_drops_offers_and_counts_them() {
        let mut w = World::new(1);
        let lan = w.add_segment(SegmentConfig::default());
        let t = w.add_node(Talker { sent_timer: false });
        let a = w.add_node(echo("a", false));
        w.attach(t, lan);
        w.attach(a, lan);
        w.set_link_down(lan, true);
        w.run_until(SimTime::from_ms(10));
        assert_eq!(w.frames_delivered(), 0, "nothing crosses a down link");
        assert_eq!(w.segment(lan).counters().down_drops, 1);
        assert_eq!(w.segment(lan).counters().tx_frames, 0);
        assert!(w.segment(lan).is_down());
        assert!(
            w.trace().contains("chaos: link down"),
            "chaos transitions are traced"
        );
    }

    #[test]
    fn link_down_drains_the_frame_in_flight() {
        // Down the link *while* a frame is serializing: that frame (and
        // anything already queued) still delivers; only new offers drop.
        let mut w = World::new(1);
        let lan = w.add_segment(SegmentConfig::default());
        let t = w.add_node(Talker { sent_timer: false });
        let a = w.add_node(echo("a", false));
        w.attach(t, lan);
        w.attach(a, lan);
        // Talker's frame starts serializing at t=0 and needs ~2.3 us.
        w.run_until(SimTime::from_us(1));
        w.set_link_down(lan, true);
        w.run_until(SimTime::from_ms(10));
        assert_eq!(w.node::<Echo>(a).received.len(), 1, "in-flight frame lands");
        assert_eq!(w.segment(lan).counters().down_drops, 0);
    }

    #[test]
    fn link_up_restores_delivery_and_repeat_transitions_are_noops() {
        let mut w = World::new(1);
        let lan = w.add_segment(SegmentConfig::default());
        let t = w.add_node(Talker { sent_timer: false });
        let a = w.add_node(echo("a", false));
        w.attach(t, lan);
        w.attach(a, lan);
        w.set_link_down(lan, true);
        w.set_link_down(lan, true); // no-op
        w.run_until(SimTime::from_ms(10));
        assert_eq!(w.frames_delivered(), 0);
        w.set_link_down(lan, false);
        w.set_link_down(lan, false); // no-op
        w.with_ctx::<Echo, _>(a, |_, ctx| {
            ctx.send(PortId(0), FrameBuf::from_static(b"after-heal"))
        });
        w.run_until(SimTime::from_ms(20));
        assert_eq!(w.frames_delivered(), 1, "healed link carries traffic");
    }

    #[test]
    fn crashed_node_hears_nothing_and_its_timers_die() {
        let mut w = World::new(1);
        let lan = w.add_segment(SegmentConfig::default());
        let t = w.add_node(Talker { sent_timer: false });
        let a = w.add_node(echo("a", false));
        w.attach(t, lan);
        w.attach(a, lan);
        // Crash both before anything flows: the talker's start-time frame
        // still transmits (it was sent before the crash at t=0? no —
        // crash first, then start), so crash after start but before
        // delivery.
        w.start();
        w.run_until(SimTime::from_us(1)); // frame is serializing, timer pending
        w.crash_node(a);
        w.crash_node(t);
        w.crash_node(t); // no-op on an already-crashed node
        assert!(w.is_crashed(t));
        w.run_until(SimTime::from_ms(10));
        assert_eq!(w.node::<Echo>(a).received.len(), 0, "crashed listener");
        assert!(
            !w.node::<Talker>(t).sent_timer,
            "a crashed node's pending timers never fire"
        );
        assert_eq!(w.frames_delivered(), 0);
        assert!(w.trace().contains("chaos: crash"));
    }

    #[test]
    fn restart_brings_a_node_back() {
        struct Phoenix {
            crashes: u32,
            restarts: u32,
            frames: u32,
        }
        impl Node for Phoenix {
            fn name(&self) -> &str {
                "phoenix"
            }
            fn on_frame(&mut self, _: &mut Ctx<'_>, _: PortId, _: FrameBuf) {
                self.frames += 1;
            }
            fn on_crash(&mut self, _: &mut Ctx<'_>) {
                self.crashes += 1;
            }
            fn on_restart(&mut self, ctx: &mut Ctx<'_>) {
                self.restarts += 1;
                ctx.trace("back from the dead");
            }
            fn as_any(&self) -> &dyn core::any::Any {
                self
            }
            fn as_any_mut(&mut self) -> &mut dyn core::any::Any {
                self
            }
        }
        let mut w = World::new(1);
        let lan = w.add_segment(SegmentConfig::default());
        let p = w.add_node(Phoenix {
            crashes: 0,
            restarts: 0,
            frames: 0,
        });
        let a = w.add_node(echo("a", false));
        w.attach(p, lan);
        w.attach(a, lan);
        w.restart_node(p); // no-op: not crashed
        w.crash_node(p);
        w.restart_node(p);
        assert!(!w.is_crashed(p));
        w.with_ctx::<Echo, _>(a, |_, ctx| {
            ctx.send(PortId(0), FrameBuf::from_static(b"hello again"))
        });
        w.run_until(SimTime::from_ms(10));
        let ph = w.node::<Phoenix>(p);
        assert_eq!((ph.crashes, ph.restarts), (1, 1));
        assert_eq!(ph.frames, 1, "restarted node hears traffic again");
    }

    #[test]
    fn chaos_script_schedules_against_world_ids() {
        use crate::chaos::ChaosScript;
        let mut w = World::new(1);
        let lan = w.add_segment(SegmentConfig::default());
        let t = w.add_node(Talker { sent_timer: false });
        let a = w.add_node(echo("a", false));
        w.attach(t, lan);
        w.attach(a, lan);
        let mut script = ChaosScript::transparent();
        script
            .partition(0, SimDuration::from_ms(0), SimDuration::from_ms(5))
            .crash_cycle(0, SimDuration::from_ms(1), SimDuration::from_ms(6));
        script.schedule(&mut w, SimTime::ZERO, &[lan], &[a]);
        w.run_until(SimTime::from_ms(4));
        assert!(w.segment(lan).is_down());
        assert!(w.is_crashed(a));
        w.run_until(SimTime::from_ms(10));
        assert!(!w.segment(lan).is_down());
        assert!(!w.is_crashed(a));
        // The talker's t=0 frame was offered while the link was down.
        assert_eq!(w.segment(lan).counters().down_drops, 1);
    }

    #[test]
    fn chaos_replays_byte_identically() {
        use crate::chaos::ChaosScript;
        fn run(seed: u64) -> (u64, u64, u64) {
            let mut w = World::new(seed);
            let lan = w.add_segment(SegmentConfig {
                fault: crate::fault::FaultConfig {
                    drop_one_in: 3,
                    ..Default::default()
                },
                ..Default::default()
            });
            let t = w.add_node(Talker { sent_timer: false });
            let a = w.add_node(echo("a", true));
            w.attach(t, lan);
            w.attach(a, lan);
            let mut script = ChaosScript::transparent();
            script
                .flap_storm(
                    0,
                    SimDuration::from_us(1),
                    4,
                    SimDuration::from_us(2),
                    SimDuration::from_us(2),
                )
                .crash_cycle(0, SimDuration::from_us(3), SimDuration::from_us(9));
            script.schedule(&mut w, SimTime::ZERO, &[lan], &[a]);
            w.run_until(SimTime::from_ms(50));
            let c = w.segment(lan).counters();
            (w.frames_delivered(), c.down_drops, w.trace().appended())
        }
        assert_eq!(run(77), run(77));
    }

    #[test]
    fn reset_clears_chaos_state() {
        let mut w = World::new(5);
        let lan = w.add_segment(SegmentConfig::default());
        let a = w.add_node(echo("a", false));
        w.attach(a, lan);
        w.set_link_down(lan, true);
        w.crash_node(a);
        w.reset(5);
        let lan2 = w.add_segment(SegmentConfig::default());
        let b = w.add_node(echo("b", false));
        w.attach(b, lan2);
        assert!(!w.segment(lan2).is_down(), "down state must not leak");
        assert!(!w.is_crashed(b), "crash marks must not leak");
        assert_eq!(w.segment(lan2).counters().down_drops, 0);
    }

    /// A world dirtied by an (unhealed!) chaos script replays like a
    /// fresh one after `reset` — the exec pool reuses worlds across
    /// sweep scenarios, so leaked down-links or crash marks would make
    /// the chaos sweep's report depend on worker scheduling.
    #[test]
    fn reset_after_chaos_replays_like_fresh() {
        use crate::chaos::ChaosScript;
        fn drive(w: &mut World) -> (u64, u64, u64) {
            let lan = w.add_segment(SegmentConfig::default());
            let t = w.add_node(Talker { sent_timer: false });
            let a = w.add_node(echo("a", true));
            w.attach(t, lan);
            w.attach(a, lan);
            w.run_until(SimTime::from_ms(50));
            let c = w.segment(lan).counters();
            (w.frames_delivered(), c.down_drops, w.trace().appended())
        }
        let mut fresh = World::new(7);
        let want = drive(&mut fresh);

        // Dirty a world with chaos that is never healed, then reset.
        let mut reused = World::new(123);
        let lan = reused.add_segment(SegmentConfig::default());
        let a = reused.add_node(echo("a", false));
        reused.attach(a, lan);
        let mut script = ChaosScript::transparent();
        script
            .link_down(SimDuration::from_us(1), 0)
            .crash(SimDuration::from_us(2), 0);
        script.schedule(&mut reused, SimTime::ZERO, &[lan], &[a]);
        reused.run_until(SimTime::from_ms(10));
        assert!(reused.segment(lan).is_down());
        assert!(reused.is_crashed(a));

        reused.reset(7);
        assert_eq!(drive(&mut reused), want, "reset world replays fresh");
    }

    #[test]
    fn capture_records_wire_frames() {
        let mut w = World::new(1);
        let lan = w.add_segment(SegmentConfig {
            capture: true,
            ..Default::default()
        });
        let t = w.add_node(Talker { sent_timer: false });
        let a = w.add_node(echo("a", false));
        w.attach(t, lan);
        w.attach(a, lan);
        w.run_until(SimTime::from_ms(10));
        let cap = w.segment(lan).captured();
        assert_eq!(cap.len(), 1);
        assert_eq!(&cap[0].data[..], b"hello");
        assert_eq!(cap[0].src, (t, PortId(0)));
    }
}
