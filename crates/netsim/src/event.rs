//! The event queue.
//!
//! Events are totally ordered by `(time, sequence)`: two events scheduled
//! for the same instant fire in the order they were scheduled. This is what
//! makes runs reproducible — the queue never breaks ties arbitrarily.
//!
//! # Structure
//!
//! Two stores back the queue, with identical observable ordering:
//!
//! * a binary min-heap for events in the future, pre-reservable via
//!   [`EventQueue::reserve`] (the world sizes it from the topology so
//!   the steady state never reallocates);
//! * a FIFO *now lane* for events scheduled at exactly the current
//!   instant — the dominant pattern on the frame plane (zero-service-time
//!   queues, same-tick timer chains). Those events would otherwise churn
//!   through the heap only to come straight back out; the lane makes them
//!   O(1) pushes and pops.
//!
//! The lane is correct because (a) only events at the *current* time enter
//! it, so its entries are mutually ordered by sequence alone (FIFO), and
//! (b) `pop` always takes the global `(time, seq)` minimum of the two
//! heads, so lane entries interleave correctly with same-time events that
//! were scheduled earlier and still sit in the heap. The lane drains
//! before the clock can advance (its entries are never later than any
//! heap entry's time while non-empty).

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

use crate::chaos::ChaosEv;
use crate::framebuf::FrameBuf;
use crate::node::{NodeId, PortId, TimerToken};
use crate::segment::SegId;
use crate::time::SimTime;

/// What happens when an event fires.
#[derive(Debug)]
pub(crate) enum EventKind {
    /// Deliver the node's start callback.
    Start(NodeId),
    /// Deliver one completed wire frame to every listener of a segment:
    /// the first `n_att` attachments except the sender, in attachment
    /// order, all sharing one [`FrameBuf`]. (`n_att` is captured when the
    /// frame finishes serializing so listeners attached afterwards do not
    /// hear a frame from before their time.) Boxed: this variant only
    /// occurs on fault-injecting or capturing segments (transparent ones
    /// take the fused [`EventKind::SegDeliver`] path), and keeping it fat
    /// would double the slab traffic of *every* queued event.
    DeliverAll(Box<DeliverAll>),
    /// Fire a node timer (unless cancelled).
    Timer {
        node: NodeId,
        token: TimerToken,
        id: u64,
    },
    /// A segment finished serializing the frame at the head of its queue.
    SegTxDone { seg: SegId },
    /// Fused completion + delivery for a segment that was transparent
    /// (no fault injection) and uncaptured when the frame started
    /// serializing: fires at completion + propagation, does the
    /// completion bookkeeping and delivers in one event — half the event
    /// traffic of the `SegTxDone`→`DeliverAll` pair on the common path.
    /// `n_att` snapshots the listener count when serialization begins,
    /// so nodes attached while the frame is on the wire never hear it
    /// (the two-event path snapshots at completion; both bound the
    /// audience to nodes attached before delivery).
    SegDeliver { seg: SegId, n_att: u32 },
    /// A scripted topology fault fires (see [`crate::chaos`]). Scheduled
    /// up-front by [`crate::chaos::ChaosScript::schedule`], so chaotic
    /// runs keep the same `(time, seq)` order on every replay.
    Chaos(ChaosEv),
}

/// Payload of [`EventKind::DeliverAll`].
#[derive(Debug)]
pub(crate) struct DeliverAll {
    pub seg: SegId,
    pub src: (NodeId, PortId),
    pub n_att: u32,
    pub frame: FrameBuf,
}

#[derive(Debug)]
pub(crate) struct Event {
    pub at: SimTime,
    pub seq: u64,
    pub kind: EventKind,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Event {}
impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<core::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Event {
    fn cmp(&self, other: &Self) -> core::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// A heap entry: the ordering key plus the slab slot holding the event's
/// payload. 24 bytes, so heap sift-up/down moves a quarter of what moving
/// whole [`Event`]s (with their embedded [`EventKind`]) used to — the
/// heap is the hottest data structure in the simulator.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
struct HeapKey {
    at: SimTime,
    seq: u64,
    slot: u32,
}

impl PartialOrd for HeapKey {
    fn partial_cmp(&self, other: &Self) -> Option<core::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapKey {
    fn cmp(&self, other: &Self) -> core::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// Min-queue of events ordered by `(time, seq)`.
///
/// Future events live as 24-byte keys in a binary heap; their payloads
/// sit in a free-listed slab the keys index. Same-instant events take the
/// FIFO now-lane and never touch either.
#[derive(Default)]
pub(crate) struct EventQueue {
    heap: BinaryHeap<Reverse<HeapKey>>,
    /// Payload slab, indexed by [`HeapKey::slot`].
    slots: Vec<Option<EventKind>>,
    /// Free slab slots.
    free: Vec<u32>,
    /// FIFO of events scheduled at exactly [`EventQueue::now`].
    now_lane: VecDeque<Event>,
    /// The time of the last popped event (the simulation's current time
    /// from the queue's perspective). Starts at zero, matching the world
    /// clock, so start-of-world pushes take the lane too.
    now: SimTime,
    next_seq: u64,
}

impl EventQueue {
    pub fn new() -> Self {
        EventQueue::default()
    }

    /// Pre-reserve capacity for at least `events` pending events (a
    /// topology-derived hint; keeps the steady state reallocation-free).
    pub fn reserve(&mut self, events: usize) {
        let want = events.saturating_sub(self.heap.len());
        self.heap.reserve(want);
        self.slots.reserve(want);
        let lane_want = events.min(1024).saturating_sub(self.now_lane.len());
        self.now_lane.reserve(lane_want);
    }

    /// Drop every pending event and rewind the clock/sequence state to
    /// what a fresh queue has, **keeping** the heap, slab, free-list and
    /// now-lane storage — the point of [`crate::World::reset`] is that a
    /// sweep's steady state reuses these allocations across runs.
    pub fn clear(&mut self) {
        self.heap.clear();
        self.slots.clear();
        self.free.clear();
        self.now_lane.clear();
        self.now = SimTime::ZERO;
        self.next_seq = 0;
    }

    /// Schedule `kind` at absolute time `at`.
    pub fn push(&mut self, at: SimTime, kind: EventKind) {
        let seq = self.next_seq;
        self.next_seq += 1;
        if at == self.now {
            self.now_lane.push_back(Event { at, seq, kind });
        } else {
            let slot = match self.free.pop() {
                Some(s) => {
                    self.slots[s as usize] = Some(kind);
                    s
                }
                None => {
                    self.slots.push(Some(kind));
                    (self.slots.len() - 1) as u32
                }
            };
            self.heap.push(Reverse(HeapKey { at, seq, slot }));
        }
    }

    /// Time of the next event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        match (self.now_lane.front(), self.heap.peek()) {
            (Some(l), Some(Reverse(h))) => Some(l.at.min(h.at)),
            (Some(l), None) => Some(l.at),
            (None, Some(Reverse(h))) => Some(h.at),
            (None, None) => None,
        }
    }

    /// Remove and return the next event (the `(time, seq)` minimum).
    pub fn pop(&mut self) -> Option<Event> {
        self.pop_at_or_before(SimTime::MAX)
    }

    /// Remove and return the next event if its time is `<= bound` — the
    /// fused peek-and-pop the run loop uses (one head comparison instead
    /// of two per event).
    pub fn pop_at_or_before(&mut self, bound: SimTime) -> Option<Event> {
        let take_lane = match (self.now_lane.front(), self.heap.peek()) {
            (Some(l), Some(Reverse(h))) => (l.at, l.seq) < (h.at, h.seq),
            (Some(_), None) => true,
            (None, _) => false,
        };
        let event = if take_lane {
            if self.now_lane.front().map(|e| e.at > bound).unwrap_or(true) {
                return None;
            }
            self.now_lane.pop_front()
        } else {
            if self
                .heap
                .peek()
                .map(|Reverse(h)| h.at > bound)
                .unwrap_or(true)
            {
                return None;
            }
            self.heap.pop().map(|Reverse(key)| {
                let kind = self.slots[key.slot as usize]
                    .take()
                    .expect("heap key points at an empty slab slot");
                self.free.push(key.slot);
                Event {
                    at: key.at,
                    seq: key.seq,
                    kind,
                }
            })
        }?;
        debug_assert!(
            self.now_lane.is_empty() || event.at == self.now,
            "now lane must drain before the clock advances"
        );
        self.now = event.at;
        Some(event)
    }

    pub fn len(&self) -> usize {
        self.heap.len() + self.now_lane.len()
    }

    #[allow(dead_code)]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty() && self.now_lane.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_within_same_instant() {
        let mut q = EventQueue::new();
        let t = SimTime::from_ms(1);
        q.push(t, EventKind::Start(NodeId(0)));
        q.push(t, EventKind::Start(NodeId(1)));
        q.push(t, EventKind::Start(NodeId(2)));
        let order: Vec<usize> = (0..3)
            .map(|_| match q.pop().unwrap().kind {
                EventKind::Start(n) => n.0,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(order, vec![0, 1, 2]);
    }

    #[test]
    fn time_order_dominates_insert_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_ms(5), EventKind::Start(NodeId(5)));
        q.push(SimTime::from_ms(1), EventKind::Start(NodeId(1)));
        q.push(SimTime::from_ms(3), EventKind::Start(NodeId(3)));
        let order: Vec<usize> = (0..3)
            .map(|_| match q.pop().unwrap().kind {
                EventKind::Start(n) => n.0,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(order, vec![1, 3, 5]);
    }

    #[test]
    fn peek_time_tracks_head() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.push(SimTime::from_ms(9), EventKind::Start(NodeId(0)));
        q.push(SimTime::from_ms(2), EventKind::Start(NodeId(1)));
        assert_eq!(q.peek_time(), Some(SimTime::from_ms(2)));
        q.pop();
        assert_eq!(q.peek_time(), Some(SimTime::from_ms(9)));
    }

    /// The now-lane fast path must interleave correctly with same-time
    /// events that were scheduled earlier (lower seq) and live in the
    /// heap: heap-resident t=2 events fire before lane entries pushed
    /// after the clock reached t=2.
    #[test]
    fn now_lane_interleaves_with_heap_by_sequence() {
        let mut q = EventQueue::new();
        let t2 = SimTime::from_ms(2);
        q.push(SimTime::from_ms(1), EventKind::Start(NodeId(10))); // seq 0
        q.push(t2, EventKind::Start(NodeId(20))); // seq 1 (heap)
        q.push(t2, EventKind::Start(NodeId(21))); // seq 2 (heap)
                                                  // Pop t=1; the queue's notion of "now" becomes 1 ms.
        assert!(matches!(
            q.pop().unwrap().kind,
            EventKind::Start(NodeId(10))
        ));
        // Pop the first t=2 event; "now" becomes 2 ms.
        assert!(matches!(
            q.pop().unwrap().kind,
            EventKind::Start(NodeId(20))
        ));
        // Schedule two more events at the current instant (they take the
        // lane) — they must fire *after* the remaining heap entry at t=2.
        q.push(t2, EventKind::Start(NodeId(22))); // seq 3 (lane)
        q.push(t2, EventKind::Start(NodeId(23))); // seq 4 (lane)
        assert_eq!(q.len(), 3);
        let order: Vec<usize> = (0..3)
            .map(|_| match q.pop().unwrap().kind {
                EventKind::Start(n) => n.0,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(order, vec![21, 22, 23]);
        assert!(q.is_empty());
    }

    #[test]
    fn start_of_world_pushes_take_the_lane_in_order() {
        let mut q = EventQueue::new();
        for i in 0..4 {
            q.push(SimTime::ZERO, EventKind::Start(NodeId(i)));
        }
        let order: Vec<usize> = (0..4)
            .map(|_| match q.pop().unwrap().kind {
                EventKind::Start(n) => n.0,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(order, vec![0, 1, 2, 3]);
    }

    #[test]
    fn reserve_is_idempotent_and_harmless() {
        let mut q = EventQueue::new();
        q.reserve(1000);
        q.reserve(10);
        q.push(SimTime::from_ms(1), EventKind::Start(NodeId(0)));
        assert_eq!(q.len(), 1);
        assert!(q.pop().is_some());
    }
}
