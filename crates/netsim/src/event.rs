//! The event queue.
//!
//! Events are totally ordered by `(time, sequence)`: two events scheduled
//! for the same instant fire in the order they were scheduled. This is what
//! makes runs reproducible — the heap never breaks ties arbitrarily.

use alloc_collections::{BinaryHeap, Reverse};

use bytes::Bytes;

use crate::node::{NodeId, PortId, TimerToken};
use crate::segment::SegId;
use crate::time::SimTime;

mod alloc_collections {
    pub use std::cmp::Reverse;
    pub use std::collections::BinaryHeap;
}

/// What happens when an event fires.
#[derive(Debug)]
pub(crate) enum EventKind {
    /// Deliver the node's start callback.
    Start(NodeId),
    /// Deliver a frame to a node port.
    Deliver {
        node: NodeId,
        port: PortId,
        frame: Bytes,
    },
    /// Fire a node timer (unless cancelled).
    Timer {
        node: NodeId,
        token: TimerToken,
        id: u64,
    },
    /// A segment finished serializing the frame at the head of its queue.
    SegTxDone { seg: SegId },
}

#[derive(Debug)]
pub(crate) struct Event {
    pub at: SimTime,
    pub seq: u64,
    pub kind: EventKind,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Event {}
impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<core::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Event {
    fn cmp(&self, other: &Self) -> core::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// Min-heap of events ordered by `(time, seq)`.
#[derive(Default)]
pub(crate) struct EventQueue {
    heap: BinaryHeap<Reverse<Event>>,
    next_seq: u64,
}

impl EventQueue {
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Schedule `kind` at absolute time `at`.
    pub fn push(&mut self, at: SimTime, kind: EventKind) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Reverse(Event { at, seq, kind }));
    }

    /// Time of the next event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|Reverse(e)| e.at)
    }

    /// Remove and return the next event.
    pub fn pop(&mut self) -> Option<Event> {
        self.heap.pop().map(|Reverse(e)| e)
    }

    pub fn len(&self) -> usize {
        self.heap.len()
    }

    #[allow(dead_code)]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_within_same_instant() {
        let mut q = EventQueue::new();
        let t = SimTime::from_ms(1);
        q.push(t, EventKind::Start(NodeId(0)));
        q.push(t, EventKind::Start(NodeId(1)));
        q.push(t, EventKind::Start(NodeId(2)));
        let order: Vec<usize> = (0..3)
            .map(|_| match q.pop().unwrap().kind {
                EventKind::Start(n) => n.0,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(order, vec![0, 1, 2]);
    }

    #[test]
    fn time_order_dominates_insert_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_ms(5), EventKind::Start(NodeId(5)));
        q.push(SimTime::from_ms(1), EventKind::Start(NodeId(1)));
        q.push(SimTime::from_ms(3), EventKind::Start(NodeId(3)));
        let order: Vec<usize> = (0..3)
            .map(|_| match q.pop().unwrap().kind {
                EventKind::Start(n) => n.0,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(order, vec![1, 3, 5]);
    }

    #[test]
    fn peek_time_tracks_head() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.push(SimTime::from_ms(9), EventKind::Start(NodeId(0)));
        q.push(SimTime::from_ms(2), EventKind::Start(NodeId(1)));
        assert_eq!(q.peek_time(), Some(SimTime::from_ms(2)));
        q.pop();
        assert_eq!(q.peek_time(), Some(SimTime::from_ms(9)));
    }
}
