//! Deterministic pseudo-random number generation.
//!
//! The simulator owns a single xoshiro256** generator seeded from the run's
//! seed via SplitMix64. Every random decision (fault injection, workload
//! jitter) is drawn from it in event order, so a run is exactly reproducible
//! from `(topology, seed)`. Child generators can be [`forked`](Xoshiro::fork)
//! off for per-node streams that must not perturb each other.
//!
//! Implemented in-repo (rather than depending on `rand` here) so that the
//! substrate has zero non-workspace dependencies and the bit stream can never
//! change underneath recorded experiment outputs.

/// SplitMix64: used only for seeding.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// xoshiro256** 1.0 by Blackman & Vigna (public domain reference algorithm).
#[derive(Clone, Debug)]
pub struct Xoshiro {
    s: [u64; 4],
}

impl Xoshiro {
    /// Seed deterministically from a 64-bit seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = splitmix64(&mut sm);
        }
        // The all-zero state is invalid; splitmix64 cannot produce four
        // zeros from any seed, but be defensive anyway.
        if s == [0, 0, 0, 0] {
            s[0] = 1;
        }
        Xoshiro { s }
    }

    /// Next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Next 32 uniformly distributed bits.
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// A uniform value in `[0, n)`. Panics if `n == 0`.
    ///
    /// Uses Lemire's multiply-shift rejection method for unbiased results.
    pub fn range(&mut self, n: u64) -> u64 {
        assert!(n > 0, "range bound must be positive");
        loop {
            let x = self.next_u64();
            let m = (x as u128).wrapping_mul(n as u128);
            let low = m as u64;
            if low >= n.wrapping_neg() % n {
                return (m >> 64) as u64;
            }
            // Rejected: retry (vanishingly rare for small n).
        }
    }

    /// A uniform value in `[lo, hi)`. Panics if `lo >= hi`.
    pub fn range_between(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range");
        lo + self.range(hi - lo)
    }

    /// True with probability `1/n`. `n == 0` means never.
    pub fn one_in(&mut self, n: u64) -> bool {
        n != 0 && self.range(n) == 0
    }

    /// A uniform float in `[0, 1)` (for workload shaping; never used on the
    /// event-ordering path).
    pub fn uniform_f64(&mut self) -> f64 {
        // 53 random bits into the mantissa.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Split off an independent child generator.
    ///
    /// The child is seeded from the parent's stream, so forking is itself
    /// deterministic.
    pub fn fork(&mut self) -> Xoshiro {
        Xoshiro::seed_from_u64(self.next_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = Xoshiro::seed_from_u64(42);
        let mut b = Xoshiro::seed_from_u64(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Xoshiro::seed_from_u64(1);
        let mut b = Xoshiro::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn range_is_in_bounds_and_covers() {
        let mut r = Xoshiro::seed_from_u64(7);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = r.range(10) as usize;
            assert!(v < 10);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit in 1000 draws");
    }

    #[test]
    fn one_in_zero_never_fires() {
        let mut r = Xoshiro::seed_from_u64(7);
        for _ in 0..100 {
            assert!(!r.one_in(0));
        }
    }

    #[test]
    fn one_in_one_always_fires() {
        let mut r = Xoshiro::seed_from_u64(7);
        for _ in 0..100 {
            assert!(r.one_in(1));
        }
    }

    #[test]
    fn uniform_f64_in_unit_interval() {
        let mut r = Xoshiro::seed_from_u64(9);
        for _ in 0..1000 {
            let x = r.uniform_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn fork_streams_are_independent_and_deterministic() {
        let mut a = Xoshiro::seed_from_u64(11);
        let mut b = Xoshiro::seed_from_u64(11);
        let mut fa = a.fork();
        let mut fb = b.fork();
        for _ in 0..100 {
            assert_eq!(fa.next_u64(), fb.next_u64());
        }
        // Parent streams stay in lockstep too.
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
