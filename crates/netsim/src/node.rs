//! The [`Node`] trait: anything attached to segments — hosts, bridges,
//! repeaters, measurement probes — implements it.
//!
//! Nodes are event-driven: the world calls [`Node::on_start`] once,
//! [`Node::on_frame`] for every frame delivered to one of the node's ports,
//! and [`Node::on_timer`] when a timer the node scheduled fires. All services
//! a node may use during a callback are exposed on [`crate::Ctx`].

use core::any::Any;
use core::fmt;

use crate::framebuf::FrameBuf;
use crate::Ctx;

/// Identifies a node within a [`crate::World`].
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct NodeId(pub usize);

/// Identifies one of a node's ports (attachment points), in attachment
/// order: the first `attach` call creates port 0, the next port 1, and so
/// on. This mirrors the paper's `eth0`, `eth1`, ... device naming.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct PortId(pub usize);

/// An opaque user payload carried by a timer, returned to the node when the
/// timer fires. Nodes typically encode a small enum into it.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub struct TimerToken(pub u64);

/// Handle for cancelling a scheduled timer.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub struct TimerHandle(pub(crate) u64);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for PortId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "eth{}", self.0)
    }
}

/// A simulated network element.
///
/// Implementations must also provide `as_any`/`as_any_mut` (one-liners) so
/// that experiment code can downcast a node back to its concrete type after
/// a run to read results out of it.
pub trait Node: Any {
    /// Human-readable name used in traces.
    fn name(&self) -> &str;

    /// Called once when the world starts, before any frame flows.
    fn on_start(&mut self, _ctx: &mut Ctx<'_>) {}

    /// A frame arrived on `port`. The buffer is shared with every other
    /// listener of the segment (and the capture log): cloning it is a
    /// refcount bump, and mutation is copy-on-write.
    fn on_frame(&mut self, ctx: &mut Ctx<'_>, port: PortId, frame: FrameBuf);

    /// A timer scheduled via [`Ctx::schedule`] fired.
    fn on_timer(&mut self, _ctx: &mut Ctx<'_>, _token: TimerToken) {}

    /// The node crashed (see [`crate::chaos`]): discard all volatile
    /// state. While crashed the world delivers it no frames and fires
    /// none of its pending timers. Default: no-op (stateless nodes have
    /// nothing to lose).
    fn on_crash(&mut self, _ctx: &mut Ctx<'_>) {}

    /// The node restarted cold after a crash: rebuild whatever a power
    /// cycle would rebuild (reload boot images, restart protocols).
    /// Default: no-op.
    fn on_restart(&mut self, _ctx: &mut Ctx<'_>) {}

    /// Downcast support.
    fn as_any(&self) -> &dyn Any;
    /// Downcast support.
    fn as_any_mut(&mut self) -> &mut dyn Any;
}
