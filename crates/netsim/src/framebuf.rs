//! [`FrameBuf`]: the refcounted, immutable frame buffer every layer of
//! the data plane passes around.
//!
//! A frame is built exactly once (by an application, a protocol stack or
//! `ether::FrameBuilder`) and then *shared*: delivering it to N listeners,
//! capturing it, duplicating it through fault injection, queueing it on a
//! segment and handing it to a bridge's switching function are all
//! refcount bumps on the same allocation. The only operation that copies
//! is [`FrameBuf::mutate`] — copy-on-write, used by the fault layer's
//! corruption point so one listener's corrupted view can never leak into
//! the buffer other listeners (or the capture log) observe.
//!
//! `FrameBuf` is a thin wrapper over [`bytes::Bytes`]; it exists so the
//! simulator's API names the *frame* contract (immutable, cheap to clone,
//! zero-copy subranges) rather than a general byte container.

use bytes::{Bytes, BytesMut};

/// A cheaply clonable, immutable Ethernet frame buffer.
///
/// `Clone` is a refcount bump; two clones observe the same storage (see
/// [`FrameBuf::shares_storage`]). Mutation goes through copy-on-write
/// ([`FrameBuf::mutate`]) and never affects other holders.
#[derive(Clone, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FrameBuf(Bytes);

impl FrameBuf {
    /// An empty frame buffer.
    pub const fn new() -> Self {
        FrameBuf(Bytes::new())
    }

    /// Wrap a static byte slice without copying.
    pub const fn from_static(bytes: &'static [u8]) -> Self {
        FrameBuf(Bytes::from_static(bytes))
    }

    /// Copy a slice into a fresh buffer (the build-once point).
    pub fn copy_from_slice(data: &[u8]) -> Self {
        FrameBuf(Bytes::copy_from_slice(data))
    }

    /// Frame length in octets.
    #[inline]
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True if the frame is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// A zero-copy view of a subrange (shares this buffer's storage) —
    /// what decapsulation uses to peel headers without copying payloads.
    #[inline]
    pub fn slice(&self, range: impl std::ops::RangeBounds<usize>) -> FrameBuf {
        FrameBuf(self.0.slice(range))
    }

    /// Copy out to a `Vec` (boundary to APIs that need owned bytes).
    pub fn to_vec(&self) -> Vec<u8> {
        self.0.to_vec()
    }

    /// The underlying refcounted byte buffer.
    #[inline]
    pub fn as_bytes(&self) -> &Bytes {
        &self.0
    }

    /// Unwrap into the underlying [`Bytes`] (no copy).
    pub fn into_bytes(self) -> Bytes {
        self.0
    }

    /// Reclaim the backing buffer without copying, if this is the last
    /// reference to the whole storage — the buffer-recycling hook: a
    /// frame that just died hands its allocation back to a pool instead
    /// of the allocator. Returns `self` unchanged otherwise (cheap: one
    /// refcount check).
    pub fn try_into_vec(self) -> Result<Vec<u8>, FrameBuf> {
        match self.0.try_into_mut() {
            Ok(m) => Ok(Vec::from(m)),
            Err(b) => Err(FrameBuf(b)),
        }
    }

    /// Copy-on-write mutation: clones the contents into a private buffer,
    /// lets `f` edit them, and replaces `self` with the edited copy.
    /// Other holders of the original buffer are unaffected. **This is the
    /// only `FrameBuf` operation that copies frame bytes** — the fault
    /// layer's corruption point is its one data-plane caller.
    pub fn mutate(&mut self, f: impl FnOnce(&mut [u8])) {
        let mut buf = BytesMut::from(&self.0[..]);
        f(&mut buf);
        self.0 = buf.freeze();
    }

    /// True if `self` and `other` are views of the same storage (same
    /// address and length) — i.e. cloning really was zero-copy. Test/
    /// assertion helper; not part of frame semantics.
    pub fn shares_storage(&self, other: &FrameBuf) -> bool {
        self.len() == other.len() && std::ptr::eq(self.0.as_ptr(), other.0.as_ptr())
    }
}

impl std::ops::Deref for FrameBuf {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for FrameBuf {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<Bytes> for FrameBuf {
    fn from(b: Bytes) -> Self {
        FrameBuf(b)
    }
}

impl From<FrameBuf> for Bytes {
    fn from(f: FrameBuf) -> Self {
        f.0
    }
}

impl From<Vec<u8>> for FrameBuf {
    fn from(v: Vec<u8>) -> Self {
        FrameBuf(Bytes::from(v))
    }
}

impl From<BytesMut> for FrameBuf {
    fn from(m: BytesMut) -> Self {
        FrameBuf(m.freeze())
    }
}

impl From<&'static [u8]> for FrameBuf {
    fn from(s: &'static [u8]) -> Self {
        FrameBuf::from_static(s)
    }
}

impl<const N: usize> From<&'static [u8; N]> for FrameBuf {
    fn from(s: &'static [u8; N]) -> Self {
        FrameBuf::from_static(s)
    }
}

impl FromIterator<u8> for FrameBuf {
    fn from_iter<T: IntoIterator<Item = u8>>(iter: T) -> Self {
        FrameBuf(Bytes::from(iter.into_iter().collect::<Vec<u8>>()))
    }
}

impl PartialEq<[u8]> for FrameBuf {
    fn eq(&self, other: &[u8]) -> bool {
        &self.0[..] == other
    }
}

impl PartialEq<&[u8]> for FrameBuf {
    fn eq(&self, other: &&[u8]) -> bool {
        &self.0[..] == *other
    }
}

impl PartialEq<Vec<u8>> for FrameBuf {
    fn eq(&self, other: &Vec<u8>) -> bool {
        &self.0[..] == other.as_slice()
    }
}

impl std::fmt::Debug for FrameBuf {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.0.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clone_shares_storage() {
        let a = FrameBuf::from(vec![1u8, 2, 3, 4]);
        let b = a.clone();
        assert!(a.shares_storage(&b));
        assert_eq!(a, b);
    }

    #[test]
    fn slice_is_zero_copy() {
        let a = FrameBuf::from(vec![9u8; 64]);
        let s = a.slice(10..20);
        assert_eq!(s.len(), 10);
        assert!(std::ptr::eq(&a[10], &s[0]), "slice must share storage");
    }

    #[test]
    fn mutate_is_copy_on_write() {
        let a = FrameBuf::from(vec![0u8; 8]);
        let mut b = a.clone();
        assert!(a.shares_storage(&b));
        b.mutate(|buf| buf[3] ^= 0xFF);
        assert!(!a.shares_storage(&b), "mutation must detach the copy");
        assert_eq!(a[3], 0, "original holder must be unaffected");
        assert_eq!(b[3], 0xFF);
    }

    #[test]
    fn static_frames_never_allocate() {
        let a = FrameBuf::from_static(b"hello frame");
        let b = a.clone();
        assert!(a.shares_storage(&b));
        assert_eq!(&a[..], b"hello frame");
    }
}
