//! Store-compute-forward service queue.
//!
//! The paper turns a store-and-forward element into a "store, *compute*, and
//! forward" element: every frame passes through a software path with a
//! nontrivial per-frame cost (Figure 5). [`ServiceQueue`] models that path
//! as a single server with a FIFO queue: items queue while the server is
//! busy; service times are supplied by the caller (typically from a
//! [`crate::cost::CostModel`]).
//!
//! # Protocol
//!
//! ```text
//! on_frame:   match q.offer(item) {
//!                 Offer::Started => ctx.schedule(service_time, SERVICE_DONE),
//!                 Offer::Queued | Offer::Dropped => {}
//!             }
//! on_timer(SERVICE_DONE):
//!             let (item, next) = q.complete();
//!             ... process item, emit frames ...
//!             if next { ctx.schedule(service_time_of_new_head, SERVICE_DONE) }
//! ```

use std::collections::VecDeque;

/// Result of offering an item to the queue.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Offer {
    /// The server was idle and begins serving this item now: the caller
    /// must schedule its completion.
    Started,
    /// The item is queued behind the in-service item.
    Queued,
    /// The queue was full; the item was discarded and counted.
    Dropped,
}

/// A single-server FIFO queue with bounded capacity.
#[derive(Debug)]
pub struct ServiceQueue<T> {
    /// The item currently in service.
    in_service: Option<T>,
    waiting: VecDeque<T>,
    cap: usize,
    dropped: u64,
    served: u64,
}

impl<T> ServiceQueue<T> {
    /// A queue that holds at most `cap` *waiting* items (one more may be in
    /// service).
    pub fn new(cap: usize) -> Self {
        ServiceQueue {
            in_service: None,
            waiting: VecDeque::new(),
            cap,
            dropped: 0,
            served: 0,
        }
    }

    /// Offer an item; see [`Offer`].
    #[inline]
    pub fn offer(&mut self, item: T) -> Offer {
        if self.in_service.is_none() {
            self.in_service = Some(item);
            Offer::Started
        } else if self.waiting.len() < self.cap {
            self.waiting.push_back(item);
            Offer::Queued
        } else {
            self.dropped += 1;
            Offer::Dropped
        }
    }

    /// The item currently in service, if any.
    #[inline]
    pub fn head(&self) -> Option<&T> {
        self.in_service.as_ref()
    }

    /// Complete service of the head item. Returns it together with a
    /// reference to the next item now entering service (for which the
    /// caller must schedule a completion). Panics if idle.
    #[inline]
    pub fn complete(&mut self) -> (T, Option<&T>) {
        let done = self
            .in_service
            .take()
            .expect("ServiceQueue::complete while idle");
        self.served += 1;
        if let Some(next) = self.waiting.pop_front() {
            self.in_service = Some(next);
        }
        (done, self.in_service.as_ref())
    }

    /// True if nothing is in service.
    pub fn is_idle(&self) -> bool {
        self.in_service.is_none()
    }

    /// Items waiting behind the in-service item.
    pub fn backlog(&self) -> usize {
        self.waiting.len()
    }

    /// Items dropped due to a full queue.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Items whose service completed.
    pub fn served(&self) -> u64 {
        self.served
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_server_discipline() {
        let mut q: ServiceQueue<u32> = ServiceQueue::new(8);
        assert!(q.is_idle());
        assert_eq!(q.offer(1), Offer::Started);
        assert_eq!(q.offer(2), Offer::Queued);
        assert_eq!(q.offer(3), Offer::Queued);
        assert_eq!(q.backlog(), 2);
        let (done, next) = q.complete();
        assert_eq!(done, 1);
        assert_eq!(next, Some(&2));
        let (done, next) = q.complete();
        assert_eq!(done, 2);
        assert_eq!(next, Some(&3));
        let (done, next) = q.complete();
        assert_eq!(done, 3);
        assert_eq!(next, None);
        assert!(q.is_idle());
        assert_eq!(q.served(), 3);
    }

    #[test]
    fn overflow_drops() {
        let mut q: ServiceQueue<u32> = ServiceQueue::new(1);
        assert_eq!(q.offer(1), Offer::Started);
        assert_eq!(q.offer(2), Offer::Queued);
        assert_eq!(q.offer(3), Offer::Dropped);
        assert_eq!(q.dropped(), 1);
    }

    #[test]
    #[should_panic(expected = "while idle")]
    fn complete_while_idle_panics() {
        let mut q: ServiceQueue<u32> = ServiceQueue::new(1);
        let _ = q.complete();
    }
}
