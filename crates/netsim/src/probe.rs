//! The flight recorder: a fixed-capacity ring of compact typed records.
//!
//! The probe is the simulator's black box. When armed it records the
//! frame lifecycle (offered / wire-tx / delivered / dropped / corrupted),
//! bridge forwarding decisions (including decision-cache hit/miss and the
//! plane generation they were made under), timer arms/fires/cancels,
//! switchlet invocations with fuel and host-call cost, and free-form app
//! phase marks. Offline tooling (`ab_scenario trace`) turns the ring into
//! a Perfetto-compatible timeline.
//!
//! # The non-perturbation invariant
//!
//! Recording is **observation only**. The probe never schedules an event,
//! never draws from the world RNG, and never touches the `(time, seq)`
//! order of the event queue — arming it cannot change what the simulation
//! does, only what is remembered about it. `tests/determinism.rs` proves
//! this against the golden FNV digests: a probe-armed lossy run produces
//! byte-for-byte the trace the disarmed run produces. Disarmed, every
//! hook is a single predictable branch on [`Probe::is_armed`].
//!
//! # Ring semantics
//!
//! The ring holds the **newest** `capacity` records: once full, each
//! append evicts the oldest record. [`Probe::appended`] counts every
//! record ever offered and [`Probe::dropped`] the evictions, so tooling
//! can tell exactly how much history was lost (`appended - dropped ==
//! len`). Records are handed back oldest-first.

use std::collections::VecDeque;

use crate::node::{NodeId, PortId};
use crate::segment::SegId;
use crate::time::SimTime;

/// Runtime configuration for arming the flight recorder.
#[derive(Copy, Clone, Debug)]
pub struct ProbeConfig {
    /// Ring capacity in records; once exceeded the oldest records are
    /// evicted (the count of evictions stays exact).
    pub capacity: usize,
}

impl Default for ProbeConfig {
    fn default() -> Self {
        ProbeConfig { capacity: 65_536 }
    }
}

/// One compact typed record. All payloads are plain `Copy` data — no
/// frame bytes are retained, only identities and lengths.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum ProbeRecord {
    /// A frame was handed to a segment: it started serializing
    /// immediately, queued behind the transmission in flight (`queued`,
    /// with the queue depth it landed at), or — see [`ProbeRecord::QueueDrop`].
    FrameOffered {
        /// The segment the frame was offered to.
        seg: SegId,
        /// Sending node and port.
        src: (NodeId, PortId),
        /// Payload length in octets.
        len: u32,
        /// `true` when the medium was busy and the frame queued.
        queued: bool,
        /// Transmit-queue depth after the offer (0 when it started now).
        depth: u32,
    },
    /// A frame offered to a full transmit queue was dropped.
    QueueDrop {
        /// The segment that dropped it.
        seg: SegId,
        /// Sending node and port.
        src: (NodeId, PortId),
        /// Payload length in octets.
        len: u32,
    },
    /// A frame finished serializing onto the wire. Stamped at the
    /// completion instant; `ser_ns` is the serialization time, so the
    /// wire-occupancy window is `[at - ser_ns, at]`.
    WireTx {
        /// The transmitting segment.
        seg: SegId,
        /// Sending node and port.
        src: (NodeId, PortId),
        /// Payload length in octets.
        len: u32,
        /// Serialization time in nanoseconds.
        ser_ns: u64,
    },
    /// Fault injection dropped the completed frame.
    FaultDrop {
        /// The segment whose fault config fired.
        seg: SegId,
        /// Payload length in octets.
        len: u32,
    },
    /// Fault injection corrupted the completed frame (still delivered).
    FaultCorrupt {
        /// The segment whose fault config fired.
        seg: SegId,
        /// Payload length in octets.
        len: u32,
    },
    /// Fault injection duplicated the completed frame.
    FaultDuplicate {
        /// The segment whose fault config fired.
        seg: SegId,
        /// Payload length in octets.
        len: u32,
    },
    /// The segment's Gilbert–Elliott burst model changed state (see
    /// [`crate::fault::BurstConfig`]): `bad == true` marks the start of
    /// a loss burst, `false` its end. The timeline export pairs them
    /// into burst windows.
    FaultBurst {
        /// The segment whose burst model flipped.
        seg: SegId,
        /// The *new* state: `true` = entered the bad state.
        bad: bool,
    },
    /// One delivery of a wire frame to one listening port.
    Deliver {
        /// The segment it arrived on.
        seg: SegId,
        /// Receiving node and port.
        dst: (NodeId, PortId),
        /// Payload length in octets.
        len: u32,
    },
    /// A node armed a timer.
    TimerArm {
        /// The scheduling node.
        node: NodeId,
        /// The timer's id (matches the fire/cancel records).
        id: u64,
        /// When it is due.
        deadline: SimTime,
    },
    /// A timer fired (delivered to its node).
    TimerFire {
        /// The node whose timer fired.
        node: NodeId,
        /// The timer's id.
        id: u64,
    },
    /// A timer was cancelled (recorded at cancel time, not at the
    /// suppressed deadline).
    TimerCancel {
        /// The cancelling node.
        node: NodeId,
        /// The timer's id.
        id: u64,
    },
    /// A bridge forwarding decision, with the decision-cache outcome and
    /// the plane generation it was made under.
    Decision {
        /// The deciding bridge.
        node: NodeId,
        /// The arrival port.
        port: PortId,
        /// Verdict label (`"direct"`, `"flood"`, `"filter"`, `"blocked"`).
        verdict: &'static str,
        /// Whether the decision cache answered.
        cache_hit: bool,
        /// The plane generation the verdict is valid under.
        generation: u64,
    },
    /// A switchlet invocation began on `node`.
    ExecBegin {
        /// The invoking node.
        node: NodeId,
    },
    /// A switchlet invocation finished, with its metered cost.
    ExecEnd {
        /// The invoking node.
        node: NodeId,
        /// Fuel (instructions) spent, 0 on a trap.
        fuel: u64,
        /// Host calls made, 0 on a trap.
        host_calls: u64,
    },
    /// A free-form application phase mark (e.g. `"ttcp.start"`).
    Mark {
        /// The marking node.
        node: NodeId,
        /// The phase label.
        label: &'static str,
    },
    /// A chaos script took a segment down.
    LinkDown {
        /// The downed segment.
        seg: SegId,
    },
    /// A chaos script brought a segment back up.
    LinkUp {
        /// The healed segment.
        seg: SegId,
    },
    /// A chaos script crashed a node (volatile state discarded).
    NodeCrash {
        /// The crashed node.
        node: NodeId,
    },
    /// A chaos script restarted a crashed node cold.
    NodeRestart {
        /// The restarted node.
        node: NodeId,
    },
    /// A bridge's watchdog quarantined a misbehaving switchlet and rolled
    /// the data plane back to its last-known-good tier.
    Quarantine {
        /// The bridge that quarantined.
        node: NodeId,
    },
    /// A bounded learning table evicted an entry to admit a new source.
    LearnEvict {
        /// The evicting bridge.
        node: NodeId,
        /// The ingress port whose quota or cap pressure chose the victim.
        port: PortId,
    },
    /// A bounded learning table rejected a new source (at capacity with
    /// nothing to evict on the offending port).
    LearnReject {
        /// The rejecting bridge.
        node: NodeId,
        /// The over-budget ingress port.
        port: PortId,
    },
    /// Storm control suppressed a port-class after sustained violation.
    PortSuppressed {
        /// The policing bridge.
        node: NodeId,
        /// The suppressed ingress port.
        port: PortId,
    },
    /// A storm-control hold-down expired and the port-class re-enabled.
    PortReleased {
        /// The policing bridge.
        node: NodeId,
        /// The re-enabled ingress port.
        port: PortId,
    },
    /// BPDU guard err-disabled a port that received a BPDU.
    BpduGuardTrip {
        /// The guarding bridge.
        node: NodeId,
        /// The err-disabled port.
        port: PortId,
    },
}

/// One recorded event: a [`ProbeRecord`] stamped with the simulated time
/// and a global sequence number (total order over all records of a run,
/// preserved across ring eviction).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct ProbeEvent {
    /// Simulated time of the record.
    pub at: SimTime,
    /// 0-based global record number (the `appended` count at record time).
    pub seq: u64,
    /// The payload.
    pub record: ProbeRecord,
}

/// The flight recorder. Owned by the world; disarmed (and empty) by
/// default. See the module docs for the ring and non-perturbation
/// contracts.
pub struct Probe {
    armed: bool,
    cap: usize,
    ring: VecDeque<ProbeEvent>,
    appended: u64,
}

impl Default for Probe {
    fn default() -> Self {
        Probe::new()
    }
}

impl Probe {
    /// A disarmed, empty recorder.
    pub fn new() -> Probe {
        Probe {
            armed: false,
            cap: 0,
            ring: VecDeque::new(),
            appended: 0,
        }
    }

    /// Arm the recorder: clears any previous recording and starts
    /// recording into a ring of `cfg.capacity` records.
    pub fn arm(&mut self, cfg: ProbeConfig) {
        self.armed = true;
        self.cap = cfg.capacity.max(1);
        self.ring.clear();
        // One up-front reservation; recording itself never allocates.
        self.ring.reserve(self.cap.min(1 << 20));
        self.appended = 0;
    }

    /// Stop recording. The recorded ring stays readable until the next
    /// [`Probe::arm`] or [`Probe::reset`].
    pub fn disarm(&mut self) {
        self.armed = false;
    }

    /// Is the recorder armed? Every hook in the hot paths is guarded by
    /// this single branch, so a disarmed recorder costs one predictable
    /// compare per potential record.
    #[inline(always)]
    pub fn is_armed(&self) -> bool {
        self.armed
    }

    /// Back to the fresh-world state: disarmed, empty, counters zeroed.
    /// `World::reset` calls this so a reused world cannot leak records
    /// (or an armed recorder) into the next scenario.
    pub(crate) fn reset(&mut self) {
        self.armed = false;
        self.cap = 0;
        self.ring.clear();
        self.appended = 0;
    }

    /// Append a record (no-op when disarmed). Never observable by the
    /// simulation: no event is scheduled, no RNG is drawn.
    #[inline]
    pub(crate) fn record(&mut self, at: SimTime, record: ProbeRecord) {
        if !self.armed {
            return;
        }
        if self.ring.len() == self.cap {
            self.ring.pop_front();
        }
        self.ring.push_back(ProbeEvent {
            at,
            seq: self.appended,
            record,
        });
        self.appended += 1;
    }

    /// The retained records, oldest first.
    pub fn records(&self) -> impl Iterator<Item = &ProbeEvent> {
        self.ring.iter()
    }

    /// Records currently retained in the ring.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// Is the ring empty?
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Total records ever appended (retained + evicted).
    pub fn appended(&self) -> u64 {
        self.appended
    }

    /// The armed ring capacity (0 while never armed).
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Records evicted because the ring was full — exact, so tooling can
    /// say precisely how much history the timeline is missing.
    pub fn dropped(&self) -> u64 {
        self.appended - self.ring.len() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mark(n: usize) -> ProbeRecord {
        ProbeRecord::Mark {
            node: NodeId(n),
            label: "t",
        }
    }

    #[test]
    fn disarmed_records_nothing() {
        let mut p = Probe::new();
        assert!(!p.is_armed());
        p.record(SimTime::ZERO, mark(0));
        assert_eq!(p.appended(), 0);
        assert!(p.is_empty());
    }

    #[test]
    fn wraparound_keeps_newest_and_counts_drops_exactly() {
        let mut p = Probe::new();
        p.arm(ProbeConfig { capacity: 4 });
        for i in 0..10 {
            p.record(SimTime::from_ns(i as u64), mark(i));
        }
        assert_eq!(p.appended(), 10);
        assert_eq!(p.len(), 4);
        assert_eq!(p.dropped(), 6, "evicted exactly appended - capacity");
        // The survivors are the newest four, oldest first, with their
        // original sequence numbers intact.
        let seqs: Vec<u64> = p.records().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![6, 7, 8, 9]);
        let nodes: Vec<usize> = p
            .records()
            .map(|e| match e.record {
                ProbeRecord::Mark { node, .. } => node.0,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(nodes, vec![6, 7, 8, 9]);
    }

    #[test]
    fn rearm_clears_previous_recording() {
        let mut p = Probe::new();
        p.arm(ProbeConfig { capacity: 8 });
        p.record(SimTime::ZERO, mark(1));
        p.arm(ProbeConfig { capacity: 8 });
        assert_eq!(p.appended(), 0);
        assert!(p.is_empty());
        assert!(p.is_armed());
    }

    #[test]
    fn reset_disarms_and_clears() {
        let mut p = Probe::new();
        p.arm(ProbeConfig::default());
        p.record(SimTime::ZERO, mark(1));
        p.reset();
        assert!(!p.is_armed());
        assert!(p.is_empty());
        assert_eq!(p.appended(), 0);
        assert_eq!(p.dropped(), 0);
    }

    #[test]
    fn disarm_keeps_the_recording_readable() {
        let mut p = Probe::new();
        p.arm(ProbeConfig { capacity: 8 });
        p.record(SimTime::from_us(3), mark(2));
        p.disarm();
        p.record(SimTime::from_us(4), mark(3));
        assert_eq!(p.len(), 1, "records after disarm are ignored");
        assert_eq!(p.records().next().unwrap().at, SimTime::from_us(3));
    }
}
