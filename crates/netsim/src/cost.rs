//! Per-node software cost models.
//!
//! The paper's performance story (Section 7) is entirely about software
//! path costs: the seven-step path of Figure 5 — interrupt service, kernel
//! buffer handling, the copy to user space, the Caml program, the copy back,
//! and the transmit queue. [`CostModel`] represents that path as a fixed
//! per-frame cost plus per-byte costs, split into "kernel" (steps 2-3, 5-6)
//! and "processing" (step 4) components so that the C-repeater baseline and
//! the Caml bridge differ only in the processing component — exactly the
//! comparison the paper draws.
//!
//! All constants live here as *presets* calibrated against the paper's
//! reported endpoints; EXPERIMENTS.md records the calibration.

use crate::time::SimDuration;

/// Decomposed per-frame software cost of a store-compute-forward element.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct CostModel {
    /// Fixed kernel-path cost per frame: interrupt service, buffer chain
    /// handling, scheduler wakeup, `recvfrom`/`sendto` syscalls
    /// (Figure 5 steps 2, 3, 5, 6).
    pub kernel_frame_ns: u64,
    /// Per-byte cost of moving the frame kernel→user and user→kernel
    /// (both copies combined).
    pub copy_byte_ns: u64,
    /// Fixed per-frame cost of the forwarding program itself
    /// (Figure 5 step 4): for the active bridge this is the Caml/VM
    /// dispatch + bridge logic; for the C repeater it is nearly zero.
    pub proc_frame_ns: u64,
    /// Per-byte cost of the forwarding program (interpreted data touching).
    pub proc_byte_ns: u64,
}

impl CostModel {
    /// A zero-cost model (infinitely fast element); useful in unit tests.
    pub const FREE: CostModel = CostModel {
        kernel_frame_ns: 0,
        copy_byte_ns: 0,
        proc_frame_ns: 0,
        proc_byte_ns: 0,
    };

    /// The active bridge preset, calibrated against the paper's measured
    /// *throughputs* (the ground truth its Section 7 reports):
    ///
    /// * kernel path ≈ 0.09 ms/frame + 122 ns/byte: the C repeater
    ///   (kernel path + trivial program) sustains ≈ 36 Mb/s at full-size
    ///   frames once the ttcp ACK stream's share is charged;
    /// * interpreted processing ≈ 0.20 ms/frame + 67 ns/byte: the bridge
    ///   lands at ≈ 15–16 Mb/s for 8 KB ttcp writes and ≈ 44% of the
    ///   repeater — the paper's headline relationship.
    ///
    /// The paper's *instrumented* Caml costs (0.34 ms ping path, 0.47 ms
    /// ttcp average) exceed what its own measured throughput implies by
    /// ~1.6×; this model sides with the throughputs and EXPERIMENTS.md
    /// discusses the discrepancy.
    pub fn active_bridge_1997() -> CostModel {
        CostModel {
            kernel_frame_ns: 90_000,
            copy_byte_ns: 122,
            proc_frame_ns: 200_000,
            proc_byte_ns: 67,
        }
    }

    /// The user-mode C buffered repeater: the same kernel path with a
    /// negligible forwarding program (a couple of microseconds).
    pub fn c_repeater_1997() -> CostModel {
        CostModel {
            kernel_frame_ns: 90_000,
            copy_byte_ns: 122,
            proc_frame_ns: 2_000,
            proc_byte_ns: 0,
        }
    }

    /// Total service time for a frame of `len` octets.
    pub fn service_time(&self, len: usize) -> SimDuration {
        let len = len as u64;
        SimDuration::from_ns(
            self.kernel_frame_ns
                + self.copy_byte_ns * len
                + self.proc_frame_ns
                + self.proc_byte_ns * len,
        )
    }

    /// The processing (step 4) component alone — what the paper's extra
    /// instrumentation measured as "cost per frame within Caml".
    pub fn processing_time(&self, len: usize) -> SimDuration {
        SimDuration::from_ns(self.proc_frame_ns + self.proc_byte_ns * len as u64)
    }

    /// The kernel component alone.
    pub fn kernel_time(&self, len: usize) -> SimDuration {
        SimDuration::from_ns(self.kernel_frame_ns + self.copy_byte_ns * len as u64)
    }

    /// The frame rate this element can sustain for frames of `len` octets,
    /// in frames per second (the paper's "limiting rate" arithmetic).
    pub fn limiting_frame_rate(&self, len: usize) -> f64 {
        1e9 / self.service_time(len).as_ns() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn service_is_sum_of_components() {
        let m = CostModel::active_bridge_1997();
        let len = 1024;
        assert_eq!(
            m.service_time(len),
            m.kernel_time(len) + m.processing_time(len)
        );
    }

    #[test]
    fn caml_cost_calibration() {
        let m = CostModel::active_bridge_1997();
        // Interpreted cost keeps the paper's *shape*: a few tenths of a
        // millisecond per frame, growing with size. (The paper's own
        // instrumented values, 0.34/0.47 ms, overshoot what its measured
        // throughput implies — see EXPERIMENTS.md.)
        let ping = m.processing_time(550).as_millis_f64();
        assert!((0.18..0.34).contains(&ping), "ping-size Caml cost {ping}");
        let ttcp = m.processing_time(1514).as_millis_f64();
        assert!((0.25..0.47).contains(&ttcp), "ttcp-size Caml cost {ttcp}");
        assert!(ttcp > ping, "interpreted cost grows with frame size");
    }

    #[test]
    fn repeater_vs_bridge_throughput_ratio() {
        let bridge = CostModel::active_bridge_1997();
        let repeater = CostModel::c_repeater_1997();
        // Paper: the bridge sustains about 44% of the repeater's throughput.
        let ratio =
            repeater.service_time(1514).as_ns() as f64 / bridge.service_time(1514).as_ns() as f64;
        assert!((0.38..0.50).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn limiting_rate_matches_paper_neighborhood() {
        let m = CostModel::active_bridge_1997();
        // Paper: ~1790 frames/s for 1024-byte frames, 2100 f/s ceiling.
        let fps = m.limiting_frame_rate(1076);
        assert!(
            (1500.0..2300.0).contains(&fps),
            "1024B frame rate was {fps}"
        );
    }

    #[test]
    fn free_model_costs_nothing() {
        assert_eq!(CostModel::FREE.service_time(9999), SimDuration::ZERO);
    }
}
