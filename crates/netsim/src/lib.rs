//! # netsim — deterministic discrete-event network simulator
//!
//! The hardware/OS substrate for the Active Bridging reproduction. The
//! paper's prototype ran on physical 100 Mb/s Ethernet LANs joined by an HP
//! Netserver running Linux; this crate provides the synthetic equivalent:
//!
//! * [`World`] — the simulation: an event queue totally ordered by
//!   `(time, sequence)`, a deterministic RNG, segments and nodes;
//! * [`segment::Segment`] — a shared-medium Ethernet LAN: one frame
//!   serializes at a time at the configured bandwidth, every attached port
//!   hears every frame (bridges rely on promiscuous reception);
//! * [`node::Node`] — the trait implemented by hosts, bridges and
//!   repeaters; event-driven (`on_start` / `on_frame` / `on_timer`);
//! * [`cost::CostModel`] — the per-frame/per-byte software cost model that
//!   reproduces the paper's Figure 5 seven-step path economics;
//! * [`service::ServiceQueue`] — single-server FIFO for store-compute-
//!   forward elements;
//! * [`fault::FaultConfig`] — deterministic drop/corrupt/duplicate
//!   injection per segment.
//!
//! Everything is integer-arithmetic deterministic: a run is a pure function
//! of `(topology, seed, cost model)`.
//!
//! ## Example
//!
//! ```
//! use netsim::{Ctx, FrameBuf, Node, NodeId, PortId, SegmentConfig, SimTime, World};
//!
//! struct Hello;
//! impl Node for Hello {
//!     fn name(&self) -> &str { "hello" }
//!     fn on_start(&mut self, ctx: &mut Ctx<'_>) {
//!         ctx.send(PortId(0), FrameBuf::from_static(b"hi"));
//!     }
//!     fn on_frame(&mut self, _: &mut Ctx<'_>, _: PortId, _: FrameBuf) {}
//!     fn as_any(&self) -> &dyn core::any::Any { self }
//!     fn as_any_mut(&mut self) -> &mut dyn core::any::Any { self }
//! }
//!
//! struct Sink(u64);
//! impl Node for Sink {
//!     fn name(&self) -> &str { "sink" }
//!     fn on_frame(&mut self, _: &mut Ctx<'_>, _: PortId, _: FrameBuf) { self.0 += 1; }
//!     fn as_any(&self) -> &dyn core::any::Any { self }
//!     fn as_any_mut(&mut self) -> &mut dyn core::any::Any { self }
//! }
//!
//! let mut world = World::new(42);
//! let lan = world.add_segment(SegmentConfig::default());
//! let h = world.add_node(Hello);
//! let s = world.add_node(Sink(0));
//! world.attach(h, lan);
//! world.attach(s, lan);
//! world.run_until(SimTime::from_ms(1));
//! assert_eq!(world.node::<Sink>(s).0, 1);
//! ```

pub mod chaos;
pub mod cost;
mod event;
pub mod fasthash;
pub mod fault;
pub mod framebuf;
pub mod node;
pub mod probe;
pub mod rng;
pub mod segment;
pub mod service;
pub mod time;
pub mod trace;
mod world;

pub use chaos::{ChaosAction, ChaosEv, ChaosScript, ChaosStep};
pub use cost::CostModel;
pub use fasthash::{FastMap, FastSet, FxBuildHasher};
pub use fault::{BurstConfig, FaultConfig};
pub use framebuf::FrameBuf;
pub use node::{Node, NodeId, PortId, TimerHandle, TimerToken};
pub use probe::{Probe, ProbeConfig, ProbeEvent, ProbeRecord};
pub use rng::Xoshiro;
pub use segment::{SegCounters, SegId, Segment, SegmentConfig};
pub use service::{Offer, ServiceQueue};
pub use time::{SimDuration, SimTime};
pub use trace::{Counters, Trace, TraceEntry};
pub use world::{Ctx, SegmentStats, World, WorldCore, WorldStats};
