//! A fast, deterministic hasher for the simulator's hot maps.
//!
//! `std`'s default `HashMap` hasher (SipHash-1-3 with per-process random
//! keys) costs ~50–100 cycles per short key — measurable on per-frame
//! paths like the learning table and hosts' ARP caches — and its
//! per-process seeding is the one source of nondeterminism the simulator
//! tolerates only because nothing observable iterates those maps. This
//! multiply-xor hasher (the `rustc-hash`/FxHash construction) is ~5×
//! faster on 6–16 byte keys and fully deterministic, which fits the
//! repo's replay-everything rule. It is **not** DoS-resistant; keys here
//! are simulation state (MACs, IPs, sequence numbers), not attacker
//! input.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// The FxHash mixing constant (64-bit golden-ratio multiplier).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Multiply-xor hasher (FxHash construction).
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, i: u64) {
        self.hash = (self.hash.rotate_left(5) ^ i).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut rest = bytes;
        while rest.len() >= 8 {
            self.add_to_hash(u64::from_le_bytes(rest[..8].try_into().unwrap()));
            rest = &rest[8..];
        }
        if !rest.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(buf) | ((rest.len() as u64) << 56));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }
    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(i as u64);
    }
    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }
    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }
    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// `BuildHasher` for [`FxHasher`] (stateless, deterministic).
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` using the fast deterministic hasher.
pub type FastMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` using the fast deterministic hasher.
pub type FastSet<T> = HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut m1: FastMap<u64, u64> = FastMap::default();
        let mut m2: FastMap<u64, u64> = FastMap::default();
        for i in 0..100 {
            m1.insert(i, i * 2);
            m2.insert(i, i * 2);
        }
        let v1: Vec<_> = m1
            .iter()
            .collect::<std::collections::BTreeMap<_, _>>()
            .into_iter()
            .collect();
        let v2: Vec<_> = m2
            .iter()
            .collect::<std::collections::BTreeMap<_, _>>()
            .into_iter()
            .collect();
        assert_eq!(v1, v2);
        assert_eq!(m1.get(&42), Some(&84));
    }

    #[test]
    fn distributes_short_keys() {
        // 6-byte MAC-like keys must not collapse onto a few buckets.
        let mut hashes: FastSet<u64> = FastSet::default();
        for i in 0..512u64 {
            let mut h = FxHasher::default();
            h.write(&i.to_be_bytes()[2..]);
            hashes.insert(h.finish());
        }
        assert_eq!(hashes.len(), 512, "no collisions on sequential MACs");
    }
}
