//! Simulated time.
//!
//! The simulator clock is a monotonically increasing count of nanoseconds
//! since the start of the run. All scheduling is integer arithmetic so that a
//! run is a pure function of its inputs: there is no floating point anywhere
//! on the scheduling path (floats appear only in reporting helpers such as
//! [`SimTime::as_secs_f64`]).

use core::fmt;
use core::ops::{Add, AddAssign, Div, Mul, Sub};

/// An instant in simulated time, in nanoseconds since the start of the run.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct SimTime(u64);

/// A span of simulated time, in nanoseconds.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; used as an "infinite" horizon.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from a raw nanosecond count.
    #[inline]
    pub const fn from_ns(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Construct from whole microseconds.
    #[inline]
    pub const fn from_us(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// Construct from whole milliseconds.
    #[inline]
    pub const fn from_ms(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Construct from whole seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }

    /// Raw nanosecond count.
    #[inline]
    pub const fn as_ns(self) -> u64 {
        self.0
    }

    /// Seconds as a float, for reporting only.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Milliseconds as a float, for reporting only.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// The span from `earlier` to `self`; saturates to zero if `earlier`
    /// is in the future.
    #[inline]
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked addition of a span.
    pub fn checked_add(self, d: SimDuration) -> Option<SimTime> {
        self.0.checked_add(d.0).map(SimTime)
    }
}

impl SimDuration {
    /// The empty span.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The largest representable span.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Construct from a raw nanosecond count.
    pub const fn from_ns(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Construct from whole microseconds.
    pub const fn from_us(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Construct from whole milliseconds.
    pub const fn from_ms(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Construct from a float number of seconds (reporting/configuration
    /// convenience; rounds to the nearest nanosecond).
    pub fn from_secs_f64(s: f64) -> Self {
        SimDuration((s * 1e9).round() as u64)
    }

    /// Raw nanosecond count.
    pub const fn as_ns(self) -> u64 {
        self.0
    }

    /// Microseconds as a float, for reporting only.
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Milliseconds as a float, for reporting only.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Seconds as a float, for reporting only.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// True if the span is zero.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// The time to serialize `bytes` octets at `bits_per_sec` onto a link.
    ///
    /// Integer arithmetic: `bytes * 8 * 1e9 / bits_per_sec`, computed in
    /// 128-bit to avoid overflow for any realistic bandwidth.
    #[inline]
    pub fn serialization(bytes: usize, bits_per_sec: u64) -> SimDuration {
        assert!(bits_per_sec > 0, "link bandwidth must be positive");
        let bits = bytes as u128 * 8;
        let ns = bits * 1_000_000_000u128 / bits_per_sec as u128;
        SimDuration(ns.min(u64::MAX as u128) as u64)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, d: SimDuration) -> SimTime {
        SimTime(
            self.0
                .checked_add(d.0)
                .expect("SimTime overflow: scheduled past u64 nanoseconds"),
        )
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, d: SimDuration) {
        *self = *self + d;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, other: SimTime) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(other.0)
                .expect("SimTime subtraction underflow"),
        )
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.checked_add(other.0).expect("SimDuration overflow"))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, other: SimDuration) {
        *self = *self + other;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, other: SimDuration) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(other.0)
                .expect("SimDuration subtraction underflow"),
        )
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, k: u64) -> SimDuration {
        SimDuration(self.0.checked_mul(k).expect("SimDuration overflow"))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, k: u64) -> SimDuration {
        SimDuration(self.0 / k)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 < 1_000 {
            write!(f, "{}ns", self.0)
        } else if self.0 < 1_000_000 {
            write!(f, "{:.3}us", self.0 as f64 / 1e3)
        } else if self.0 < 1_000_000_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1e6)
        } else {
            write!(f, "{:.6}s", self.as_secs_f64())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(SimTime::from_secs(1), SimTime::from_ms(1000));
        assert_eq!(SimTime::from_ms(1), SimTime::from_us(1000));
        assert_eq!(SimTime::from_us(1), SimTime::from_ns(1000));
        assert_eq!(SimDuration::from_secs(2).as_ns(), 2_000_000_000);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_ms(5) + SimDuration::from_ms(3);
        assert_eq!(t, SimTime::from_ms(8));
        assert_eq!(t - SimTime::from_ms(5), SimDuration::from_ms(3));
        assert_eq!(SimDuration::from_ms(4) * 3, SimDuration::from_ms(12));
        assert_eq!(SimDuration::from_ms(9) / 3, SimDuration::from_ms(3));
    }

    #[test]
    fn serialization_time_100mbps() {
        // 1514-byte frame at 100 Mb/s = 121.12 us.
        let d = SimDuration::serialization(1514, 100_000_000);
        assert_eq!(d.as_ns(), 121_120);
        // Zero bytes serialize instantly.
        assert_eq!(SimDuration::serialization(0, 10_000_000), SimDuration::ZERO);
    }

    #[test]
    fn saturating_since() {
        let a = SimTime::from_ms(10);
        let b = SimTime::from_ms(4);
        assert_eq!(a.saturating_since(b), SimDuration::from_ms(6));
        assert_eq!(b.saturating_since(a), SimDuration::ZERO);
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", SimDuration::from_ns(12)), "12ns");
        assert_eq!(format!("{}", SimDuration::from_us(12)), "12.000us");
        assert_eq!(format!("{}", SimDuration::from_ms(12)), "12.000ms");
        assert_eq!(format!("{}", SimDuration::from_secs(12)), "12.000000s");
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn subtraction_underflow_panics() {
        let _ = SimTime::from_ms(1) - SimTime::from_ms(2);
    }
}
