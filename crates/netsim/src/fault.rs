//! Fault injection for segments.
//!
//! Following the smoltcp example conventions, each segment can be configured
//! to randomly drop, corrupt, or duplicate frames. Faults are applied when a
//! frame finishes serializing, before delivery, and are drawn from the
//! world's deterministic RNG — so a faulty run replays exactly.

use crate::framebuf::FrameBuf;
use crate::rng::Xoshiro;

/// Per-segment fault configuration. The default injects no faults.
#[derive(Clone, Debug, Default)]
pub struct FaultConfig {
    /// Drop one frame in `drop_one_in` (0 = never drop).
    pub drop_one_in: u64,
    /// Corrupt one octet of one frame in `corrupt_one_in` (0 = never).
    pub corrupt_one_in: u64,
    /// Deliver one frame in `duplicate_one_in` twice (0 = never).
    pub duplicate_one_in: u64,
}

/// What the fault layer decided about one frame.
#[derive(Debug, PartialEq, Eq)]
pub enum FaultOutcome {
    /// Deliver as-is.
    Deliver(FrameBuf),
    /// Deliver twice.
    Duplicate(FrameBuf),
    /// Silently dropped.
    Drop,
}

impl FaultConfig {
    /// True if this configuration can never alter traffic.
    pub fn is_transparent(&self) -> bool {
        self.drop_one_in == 0 && self.corrupt_one_in == 0 && self.duplicate_one_in == 0
    }

    /// Apply the configured faults to one frame. The second element of the
    /// pair reports whether the frame was corrupted (delivered outcomes
    /// only), so the caller can keep per-segment accounting.
    ///
    /// Corruption goes through [`FrameBuf::mutate`] — the data plane's
    /// single copy-on-write point — so the corrupted copy is private to
    /// this delivery and the buffer other holders share stays pristine.
    /// The RNG draw sequence is part of the replay contract: transparent
    /// configs draw nothing; otherwise the draws are drop, (corrupt,
    /// index, bit), duplicate, in that order.
    pub fn apply(&self, frame: FrameBuf, rng: &mut Xoshiro) -> (FaultOutcome, bool) {
        if self.is_transparent() {
            return (FaultOutcome::Deliver(frame), false);
        }
        if rng.one_in(self.drop_one_in) {
            return (FaultOutcome::Drop, false);
        }
        let mut corrupted = false;
        let mut frame = frame;
        if !frame.is_empty() && rng.one_in(self.corrupt_one_in) {
            corrupted = true;
            let idx = rng.range(frame.len() as u64) as usize;
            // Flip a random bit so corruption is always a real change.
            let bit = 1u8 << rng.range(8);
            frame.mutate(|buf| buf[idx] ^= bit);
        }
        if rng.one_in(self.duplicate_one_in) {
            (FaultOutcome::Duplicate(frame), corrupted)
        } else {
            (FaultOutcome::Deliver(frame), corrupted)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transparent_by_default() {
        let cfg = FaultConfig::default();
        assert!(cfg.is_transparent());
        let mut rng = Xoshiro::seed_from_u64(1);
        let frame = FrameBuf::from_static(b"hello");
        assert_eq!(
            cfg.apply(frame.clone(), &mut rng),
            (FaultOutcome::Deliver(frame), false)
        );
    }

    #[test]
    fn always_drop() {
        let cfg = FaultConfig {
            drop_one_in: 1,
            ..Default::default()
        };
        let mut rng = Xoshiro::seed_from_u64(1);
        assert_eq!(
            cfg.apply(FrameBuf::from_static(b"x"), &mut rng),
            (FaultOutcome::Drop, false)
        );
    }

    #[test]
    fn corruption_changes_exactly_one_bit() {
        let cfg = FaultConfig {
            corrupt_one_in: 1,
            ..Default::default()
        };
        let mut rng = Xoshiro::seed_from_u64(3);
        let original = FrameBuf::from_static(b"abcdefgh");
        match cfg.apply(original.clone(), &mut rng) {
            (FaultOutcome::Deliver(out), corrupted) => {
                assert!(corrupted, "corruption must be reported");
                let diff_bits: u32 = original
                    .iter()
                    .zip(out.iter())
                    .map(|(a, b)| (a ^ b).count_ones())
                    .sum();
                assert_eq!(diff_bits, 1);
            }
            other => panic!("expected delivery, got {other:?}"),
        }
    }

    #[test]
    fn drop_rate_roughly_matches() {
        let cfg = FaultConfig {
            drop_one_in: 4,
            ..Default::default()
        };
        let mut rng = Xoshiro::seed_from_u64(5);
        let n = 10_000;
        let dropped = (0..n)
            .filter(|_| {
                matches!(
                    cfg.apply(FrameBuf::from_static(b"y"), &mut rng),
                    (FaultOutcome::Drop, _)
                )
            })
            .count();
        let rate = dropped as f64 / n as f64;
        assert!((0.22..0.28).contains(&rate), "rate was {rate}");
    }

    #[test]
    fn empty_frame_never_corrupted() {
        let cfg = FaultConfig {
            corrupt_one_in: 1,
            ..Default::default()
        };
        let mut rng = Xoshiro::seed_from_u64(6);
        match cfg.apply(FrameBuf::new(), &mut rng) {
            (FaultOutcome::Deliver(out), false) => assert!(out.is_empty()),
            other => panic!("unexpected {other:?}"),
        }
    }
}
