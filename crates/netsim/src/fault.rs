//! Fault injection for segments.
//!
//! Following the smoltcp example conventions, each segment can be configured
//! to randomly drop, corrupt, or duplicate frames. Faults are applied when a
//! frame finishes serializing, before delivery, and are drawn from the
//! world's deterministic RNG — so a faulty run replays exactly.

use crate::framebuf::FrameBuf;
use crate::rng::Xoshiro;

/// Per-segment fault configuration. The default injects no faults.
#[derive(Clone, Debug, Default)]
pub struct FaultConfig {
    /// Drop one frame in `drop_one_in` (0 = never drop).
    pub drop_one_in: u64,
    /// Corrupt one octet of one frame in `corrupt_one_in` (0 = never).
    pub corrupt_one_in: u64,
    /// Deliver one frame in `duplicate_one_in` twice (0 = never).
    pub duplicate_one_in: u64,
    /// Two-state Gilbert–Elliott burst model. When set, the per-state
    /// drop/corrupt odds below **supersede** `drop_one_in` /
    /// `corrupt_one_in` (which are ignored); `duplicate_one_in` still
    /// applies in both states.
    pub burst: Option<BurstConfig>,
}

/// A two-state Gilbert–Elliott loss model: the medium alternates between
/// a *good* state (background loss) and a *bad* state (a loss burst),
/// flipping per frame with the configured odds. All odds are "one in N"
/// (0 = never), matching the i.i.d. knobs on [`FaultConfig`].
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct BurstConfig {
    /// Per-frame odds of entering the bad state while good (0 = never).
    pub enter_one_in: u64,
    /// Per-frame odds of returning to the good state while bad
    /// (0 = never leave — a permanent burst once entered).
    pub exit_one_in: u64,
    /// Drop odds while in the good state.
    pub good_drop_one_in: u64,
    /// Corrupt odds while in the good state.
    pub good_corrupt_one_in: u64,
    /// Drop odds while in the bad state.
    pub bad_drop_one_in: u64,
    /// Corrupt odds while in the bad state.
    pub bad_corrupt_one_in: u64,
}

impl BurstConfig {
    /// Steady-state drop probability (per mille), from the stationary
    /// distribution of the two-state chain:
    /// `π_bad = p_enter / (p_enter + p_exit)`. Diagnostic only — integer
    /// arithmetic, not on any replay path.
    pub fn steady_state_drop_pm(&self) -> u64 {
        let p = |one_in: u64| 1_000_000u64.checked_div(one_in).unwrap_or(0);
        let (enter, exit) = (p(self.enter_one_in), p(self.exit_one_in));
        if enter + exit == 0 {
            return p(self.good_drop_one_in) / 1000;
        }
        let pi_bad = enter * 1000 / (enter + exit);
        let pi_good = 1000 - pi_bad;
        (pi_bad * p(self.bad_drop_one_in) + pi_good * p(self.good_drop_one_in)) / 1_000_000
    }
}

/// Everything the fault layer decided about one frame, including the
/// burst-model bookkeeping the caller needs for counters and probes.
#[derive(Debug)]
pub struct FaultVerdict {
    /// Deliver / duplicate / drop.
    pub outcome: FaultOutcome,
    /// The delivered frame had one bit flipped.
    pub corrupted: bool,
    /// The drop was fired by the burst model's *bad* state (always
    /// implies `outcome == Drop`; counted in `SegCounters::burst_drops`
    /// on top of `fault_drops`).
    pub burst_dropped: bool,
    /// The burst state flipped on this frame; the payload is the new
    /// state (`true` = entered bad). `None` when it stayed put.
    pub flipped: Option<bool>,
}

/// What the fault layer decided about one frame.
#[derive(Debug, PartialEq, Eq)]
pub enum FaultOutcome {
    /// Deliver as-is.
    Deliver(FrameBuf),
    /// Deliver twice.
    Duplicate(FrameBuf),
    /// Silently dropped.
    Drop,
}

impl FaultConfig {
    /// True if this configuration can never alter traffic.
    pub fn is_transparent(&self) -> bool {
        self.drop_one_in == 0
            && self.corrupt_one_in == 0
            && self.duplicate_one_in == 0
            && self.burst.is_none()
    }

    /// Apply the configured faults to one frame. The second element of the
    /// pair reports whether the frame was corrupted (delivered outcomes
    /// only), so the caller can keep per-segment accounting.
    ///
    /// Stateless compatibility wrapper over [`FaultConfig::apply_stateful`]
    /// — a burst config applied through here always evaluates in the good
    /// state.
    pub fn apply(&self, frame: FrameBuf, rng: &mut Xoshiro) -> (FaultOutcome, bool) {
        let mut bad = false;
        let v = self.apply_stateful(frame, rng, &mut bad);
        (v.outcome, v.corrupted)
    }

    /// Apply the configured faults to one frame, threading the segment's
    /// burst state (`bad`, `true` while in the Gilbert–Elliott bad state).
    ///
    /// Corruption goes through [`FrameBuf::mutate`] — the data plane's
    /// single copy-on-write point — so the corrupted copy is private to
    /// this delivery and the buffer other holders share stays pristine.
    ///
    /// The RNG draw sequence is part of the replay contract: transparent
    /// configs draw nothing. With `burst: None` the draws are drop,
    /// (corrupt, index, bit), duplicate, in that order — bit-identical to
    /// the pre-burst contract the golden digests pin. With `burst: Some`
    /// the draws are transition (`enter_one_in` while good /
    /// `exit_one_in` while bad — the state flips *before* the emission
    /// draws, so a frame that enters the bad state already suffers its
    /// odds), then the current state's drop, (corrupt, index, bit), then
    /// the shared duplicate draw. `one_in(0)` draws nothing, and the
    /// decision draws never depend on the frame's contents — an empty
    /// frame still consumes the corrupt decision and skips only the
    /// index/bit draws, so frame length cannot shift the stream for later
    /// frames' decisions.
    pub fn apply_stateful(
        &self,
        frame: FrameBuf,
        rng: &mut Xoshiro,
        bad: &mut bool,
    ) -> FaultVerdict {
        if self.is_transparent() {
            return FaultVerdict {
                outcome: FaultOutcome::Deliver(frame),
                corrupted: false,
                burst_dropped: false,
                flipped: None,
            };
        }
        let mut flipped = None;
        let (drop_odds, corrupt_odds) = match self.burst {
            None => (self.drop_one_in, self.corrupt_one_in),
            Some(b) => {
                let flip = if *bad {
                    rng.one_in(b.exit_one_in)
                } else {
                    rng.one_in(b.enter_one_in)
                };
                if flip {
                    *bad = !*bad;
                    flipped = Some(*bad);
                }
                if *bad {
                    (b.bad_drop_one_in, b.bad_corrupt_one_in)
                } else {
                    (b.good_drop_one_in, b.good_corrupt_one_in)
                }
            }
        };
        if rng.one_in(drop_odds) {
            return FaultVerdict {
                outcome: FaultOutcome::Drop,
                corrupted: false,
                burst_dropped: self.burst.is_some() && *bad,
                flipped,
            };
        }
        let mut corrupted = false;
        let mut frame = frame;
        if rng.one_in(corrupt_odds) && !frame.is_empty() {
            corrupted = true;
            let idx = rng.range(frame.len() as u64) as usize;
            // Flip a random bit so corruption is always a real change.
            let bit = 1u8 << rng.range(8);
            frame.mutate(|buf| buf[idx] ^= bit);
        }
        let outcome = if rng.one_in(self.duplicate_one_in) {
            FaultOutcome::Duplicate(frame)
        } else {
            FaultOutcome::Deliver(frame)
        };
        FaultVerdict {
            outcome,
            corrupted,
            burst_dropped: false,
            flipped,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transparent_by_default() {
        let cfg = FaultConfig::default();
        assert!(cfg.is_transparent());
        let mut rng = Xoshiro::seed_from_u64(1);
        let frame = FrameBuf::from_static(b"hello");
        assert_eq!(
            cfg.apply(frame.clone(), &mut rng),
            (FaultOutcome::Deliver(frame), false)
        );
    }

    #[test]
    fn always_drop() {
        let cfg = FaultConfig {
            drop_one_in: 1,
            ..Default::default()
        };
        let mut rng = Xoshiro::seed_from_u64(1);
        assert_eq!(
            cfg.apply(FrameBuf::from_static(b"x"), &mut rng),
            (FaultOutcome::Drop, false)
        );
    }

    #[test]
    fn corruption_changes_exactly_one_bit() {
        let cfg = FaultConfig {
            corrupt_one_in: 1,
            ..Default::default()
        };
        let mut rng = Xoshiro::seed_from_u64(3);
        let original = FrameBuf::from_static(b"abcdefgh");
        match cfg.apply(original.clone(), &mut rng) {
            (FaultOutcome::Deliver(out), corrupted) => {
                assert!(corrupted, "corruption must be reported");
                let diff_bits: u32 = original
                    .iter()
                    .zip(out.iter())
                    .map(|(a, b)| (a ^ b).count_ones())
                    .sum();
                assert_eq!(diff_bits, 1);
            }
            other => panic!("expected delivery, got {other:?}"),
        }
    }

    #[test]
    fn drop_rate_roughly_matches() {
        let cfg = FaultConfig {
            drop_one_in: 4,
            ..Default::default()
        };
        let mut rng = Xoshiro::seed_from_u64(5);
        let n = 10_000;
        let dropped = (0..n)
            .filter(|_| {
                matches!(
                    cfg.apply(FrameBuf::from_static(b"y"), &mut rng),
                    (FaultOutcome::Drop, _)
                )
            })
            .count();
        let rate = dropped as f64 / n as f64;
        assert!((0.22..0.28).contains(&rate), "rate was {rate}");
    }

    #[test]
    fn empty_frame_never_corrupted() {
        let cfg = FaultConfig {
            corrupt_one_in: 1,
            ..Default::default()
        };
        let mut rng = Xoshiro::seed_from_u64(6);
        match cfg.apply(FrameBuf::new(), &mut rng) {
            (FaultOutcome::Deliver(out), false) => assert!(out.is_empty()),
            other => panic!("unexpected {other:?}"),
        }
    }

    /// How many `next_u64` calls one `apply` consumed: replay the seed's
    /// stream until it lines up with the RNG state `apply` left behind.
    fn draws_consumed(cfg: &FaultConfig, frame: FrameBuf, seed: u64) -> u64 {
        let mut used = Xoshiro::seed_from_u64(seed);
        let _ = cfg.apply(frame, &mut used);
        let probe = used.next_u64();
        let mut reference = Xoshiro::seed_from_u64(seed);
        for consumed in 0..16 {
            if reference.next_u64() == probe {
                return consumed;
            }
        }
        panic!("apply consumed more than 15 draws");
    }

    /// The replay contract: the decision draws (drop, corrupt,
    /// duplicate) must not depend on the frame's contents. With all
    /// three knobs set but astronomically unlikely to fire, `apply`
    /// consumes exactly three draws for every frame length — including
    /// the degenerate empty and 1-byte frames.
    #[test]
    fn decision_draw_sequence_is_independent_of_frame_length() {
        let cfg = FaultConfig {
            drop_one_in: u64::MAX,
            corrupt_one_in: u64::MAX,
            duplicate_one_in: u64::MAX,
            ..Default::default()
        };
        for frame in [
            FrameBuf::new(),
            FrameBuf::from_static(b"x"),
            FrameBuf::from_static(b"hello world"),
        ] {
            assert_eq!(draws_consumed(&cfg, frame, 123), 3);
        }
    }

    /// When the corrupt decision *fires*, an empty frame skips only the
    /// index/bit draws (nothing to flip) and is delivered unmodified,
    /// while a 1-byte frame takes them and gets exactly one bit flipped
    /// — and the duplicate decision still sees the stream position right
    /// after the corrupt decision in both cases.
    #[test]
    fn degenerate_frames_pin_the_corrupt_draws() {
        let cfg = FaultConfig {
            corrupt_one_in: 1,
            duplicate_one_in: 1,
            ..Default::default()
        };
        // Empty: corrupt decision (1 draw) + duplicate decision (1 draw).
        assert_eq!(draws_consumed(&cfg, FrameBuf::new(), 9), 2);
        match cfg.apply(FrameBuf::new(), &mut Xoshiro::seed_from_u64(9)) {
            (FaultOutcome::Duplicate(out), false) => assert!(out.is_empty()),
            other => panic!("unexpected {other:?}"),
        }
        // 1-byte: corrupt + index + bit + duplicate = 4 draws
        // (range(1) and range(8) are power-of-two bounds: no rejection).
        assert_eq!(draws_consumed(&cfg, FrameBuf::from_static(b"z"), 9), 4);
        match cfg.apply(FrameBuf::from_static(b"z"), &mut Xoshiro::seed_from_u64(9)) {
            (FaultOutcome::Duplicate(out), true) => {
                assert_eq!(out.len(), 1);
                assert_eq!((out[0] ^ b'z').count_ones(), 1);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    // ---------------------------------------------- Gilbert–Elliott burst

    /// A burst config whose transitions and emissions can all draw but
    /// (almost surely) never fire — for counting draws.
    fn inert_burst() -> BurstConfig {
        BurstConfig {
            enter_one_in: u64::MAX,
            exit_one_in: u64::MAX,
            good_drop_one_in: u64::MAX,
            good_corrupt_one_in: u64::MAX,
            bad_drop_one_in: u64::MAX,
            bad_corrupt_one_in: u64::MAX,
        }
    }

    /// Like [`draws_consumed`] but through the stateful entry point,
    /// starting from the given burst state.
    fn stateful_draws_consumed(cfg: &FaultConfig, frame: FrameBuf, seed: u64, bad: bool) -> u64 {
        let mut used = Xoshiro::seed_from_u64(seed);
        let mut state = bad;
        let _ = cfg.apply_stateful(frame, &mut used, &mut state);
        let probe = used.next_u64();
        let mut reference = Xoshiro::seed_from_u64(seed);
        for consumed in 0..16 {
            if reference.next_u64() == probe {
                return consumed;
            }
        }
        panic!("apply_stateful consumed more than 15 draws");
    }

    /// The burst draw-order contract: transition, per-state drop,
    /// per-state corrupt (+index+bit), shared duplicate — so a full
    /// non-firing pass consumes exactly 4 draws regardless of frame
    /// length, and zero-odds knobs draw nothing at all.
    #[test]
    fn burst_draw_sequence_is_pinned() {
        let cfg = FaultConfig {
            duplicate_one_in: u64::MAX,
            burst: Some(inert_burst()),
            ..Default::default()
        };
        for frame in [
            FrameBuf::new(),
            FrameBuf::from_static(b"x"),
            FrameBuf::from_static(b"hello world"),
        ] {
            assert_eq!(stateful_draws_consumed(&cfg, frame.clone(), 11, false), 4);
            assert_eq!(stateful_draws_consumed(&cfg, frame, 11, true), 4);
        }
        // Zero odds are free: a burst whose good state injects nothing
        // and can (almost) never transition consumes only the enter draw.
        let sparse = FaultConfig {
            burst: Some(BurstConfig {
                enter_one_in: u64::MAX,
                ..Default::default()
            }),
            ..Default::default()
        };
        assert_eq!(
            stateful_draws_consumed(&sparse, FrameBuf::from_static(b"abc"), 12, false),
            1
        );
    }

    /// A set burst config supersedes the base drop/corrupt odds: the
    /// good state with zero odds delivers everything even though the
    /// base i.i.d. knobs say "always drop".
    #[test]
    fn burst_supersedes_base_drop_and_corrupt_odds() {
        let cfg = FaultConfig {
            drop_one_in: 1,
            corrupt_one_in: 1,
            burst: Some(BurstConfig {
                enter_one_in: u64::MAX,
                exit_one_in: 1,
                ..Default::default()
            }),
            ..Default::default()
        };
        let mut rng = Xoshiro::seed_from_u64(21);
        let mut bad = false;
        for _ in 0..64 {
            let v = cfg.apply_stateful(FrameBuf::from_static(b"q"), &mut rng, &mut bad);
            assert!(matches!(v.outcome, FaultOutcome::Deliver(_)));
            assert!(!v.corrupted);
            assert!(!v.burst_dropped);
        }
    }

    /// The bad state drops everything, transitions are reported exactly
    /// once per flip, and drops fired while bad are flagged
    /// `burst_dropped` (the `SegCounters::burst_drops` feed).
    #[test]
    fn bad_state_drops_and_flags() {
        let cfg = FaultConfig {
            burst: Some(BurstConfig {
                enter_one_in: 1, // flip immediately
                exit_one_in: 0,  // and never come back
                bad_drop_one_in: 1,
                ..Default::default()
            }),
            ..Default::default()
        };
        let mut rng = Xoshiro::seed_from_u64(31);
        let mut bad = false;
        let v = cfg.apply_stateful(FrameBuf::from_static(b"a"), &mut rng, &mut bad);
        assert_eq!(v.flipped, Some(true), "first frame enters the bad state");
        assert!(bad);
        assert!(matches!(v.outcome, FaultOutcome::Drop));
        assert!(v.burst_dropped);
        // Subsequent frames stay bad (exit odds 0 draw nothing) and keep
        // dropping without re-reporting a flip.
        let v = cfg.apply_stateful(FrameBuf::from_static(b"b"), &mut rng, &mut bad);
        assert_eq!(v.flipped, None);
        assert!(v.burst_dropped);
    }

    /// Same seed ⇒ identical drop/corrupt/transition sequence: the burst
    /// model is a pure function of (config, seed, frame lengths).
    #[test]
    fn burst_sequence_replays_from_seed() {
        let cfg = FaultConfig {
            duplicate_one_in: 9,
            burst: Some(BurstConfig {
                enter_one_in: 10,
                exit_one_in: 4,
                good_drop_one_in: 100,
                good_corrupt_one_in: 80,
                bad_drop_one_in: 2,
                bad_corrupt_one_in: 3,
            }),
            ..Default::default()
        };
        let run = |seed: u64| {
            let mut rng = Xoshiro::seed_from_u64(seed);
            let mut bad = false;
            (0..2_000)
                .map(|i| {
                    let frame = FrameBuf::from(vec![i as u8; 1 + (i % 7)]);
                    let v = cfg.apply_stateful(frame, &mut rng, &mut bad);
                    let tag = match v.outcome {
                        FaultOutcome::Deliver(_) => 0u8,
                        FaultOutcome::Duplicate(_) => 1,
                        FaultOutcome::Drop => 2,
                    };
                    (tag, v.corrupted, v.burst_dropped, v.flipped)
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(run(77), run(77));
        assert_ne!(run(77), run(78), "different seeds must diverge");
    }

    /// Empirical dwell time in the bad state matches the configured
    /// exit odds (geometric with mean `exit_one_in`), and the overall
    /// drop rate lands near the stationary-distribution prediction.
    #[test]
    fn burst_dwell_time_matches_configured_odds() {
        let burst = BurstConfig {
            enter_one_in: 20,
            exit_one_in: 5,
            bad_drop_one_in: 2,
            ..Default::default()
        };
        let cfg = FaultConfig {
            burst: Some(burst),
            ..Default::default()
        };
        let mut rng = Xoshiro::seed_from_u64(41);
        let mut bad = false;
        let mut dwells = Vec::new();
        let mut current = 0u64;
        let mut drops = 0u64;
        let n = 100_000u64;
        for _ in 0..n {
            let v = cfg.apply_stateful(FrameBuf::from_static(b"m"), &mut rng, &mut bad);
            if bad {
                current += 1;
            } else if current > 0 {
                dwells.push(current);
                current = 0;
            }
            if matches!(v.outcome, FaultOutcome::Drop) {
                drops += 1;
            }
        }
        let mean_dwell = dwells.iter().sum::<u64>() as f64 / dwells.len() as f64;
        assert!(
            (4.0..6.0).contains(&mean_dwell),
            "mean bad-state dwell was {mean_dwell}, expected ~{}",
            burst.exit_one_in
        );
        // π_bad = (1/20) / (1/20 + 1/5) = 0.2; drop rate ≈ 0.2 · 0.5 = 0.1.
        let rate = drops as f64 / n as f64;
        assert!((0.08..0.12).contains(&rate), "drop rate was {rate}");
        assert_eq!(burst.steady_state_drop_pm(), 100);
    }

    /// The stateless `apply` wrapper and `burst: None` stateful path are
    /// bit-compatible with the historical draw order (the golden-digest
    /// contract): identical outcomes and identical RNG consumption.
    #[test]
    fn stateful_without_burst_matches_stateless_apply() {
        let cfg = FaultConfig {
            drop_one_in: 4,
            corrupt_one_in: 7,
            duplicate_one_in: 5,
            ..Default::default()
        };
        for seed in [1, 9, 123, 4096] {
            let mut a_rng = Xoshiro::seed_from_u64(seed);
            let mut b_rng = Xoshiro::seed_from_u64(seed);
            let mut bad = false;
            for i in 0..500 {
                let frame = FrameBuf::from(vec![i as u8; 1 + (i % 5)]);
                let (a_out, a_cor) = cfg.apply(frame.clone(), &mut a_rng);
                let v = cfg.apply_stateful(frame, &mut b_rng, &mut bad);
                assert_eq!(a_out, v.outcome);
                assert_eq!(a_cor, v.corrupted);
                assert!(!v.burst_dropped);
                assert_eq!(v.flipped, None);
                assert!(!bad);
            }
            assert_eq!(a_rng.next_u64(), b_rng.next_u64(), "RNG streams aligned");
        }
    }
}
