//! Fault injection for segments.
//!
//! Following the smoltcp example conventions, each segment can be configured
//! to randomly drop, corrupt, or duplicate frames. Faults are applied when a
//! frame finishes serializing, before delivery, and are drawn from the
//! world's deterministic RNG — so a faulty run replays exactly.

use crate::framebuf::FrameBuf;
use crate::rng::Xoshiro;

/// Per-segment fault configuration. The default injects no faults.
#[derive(Clone, Debug, Default)]
pub struct FaultConfig {
    /// Drop one frame in `drop_one_in` (0 = never drop).
    pub drop_one_in: u64,
    /// Corrupt one octet of one frame in `corrupt_one_in` (0 = never).
    pub corrupt_one_in: u64,
    /// Deliver one frame in `duplicate_one_in` twice (0 = never).
    pub duplicate_one_in: u64,
}

/// What the fault layer decided about one frame.
#[derive(Debug, PartialEq, Eq)]
pub enum FaultOutcome {
    /// Deliver as-is.
    Deliver(FrameBuf),
    /// Deliver twice.
    Duplicate(FrameBuf),
    /// Silently dropped.
    Drop,
}

impl FaultConfig {
    /// True if this configuration can never alter traffic.
    pub fn is_transparent(&self) -> bool {
        self.drop_one_in == 0 && self.corrupt_one_in == 0 && self.duplicate_one_in == 0
    }

    /// Apply the configured faults to one frame. The second element of the
    /// pair reports whether the frame was corrupted (delivered outcomes
    /// only), so the caller can keep per-segment accounting.
    ///
    /// Corruption goes through [`FrameBuf::mutate`] — the data plane's
    /// single copy-on-write point — so the corrupted copy is private to
    /// this delivery and the buffer other holders share stays pristine.
    /// The RNG draw sequence is part of the replay contract: transparent
    /// configs draw nothing; otherwise the draws are drop, (corrupt,
    /// index, bit), duplicate, in that order. The decision draws never
    /// depend on the frame's contents — an empty frame still consumes
    /// the corrupt decision and skips only the index/bit draws (there is
    /// no octet to flip), so frame length cannot shift the stream for
    /// later frames' decisions.
    pub fn apply(&self, frame: FrameBuf, rng: &mut Xoshiro) -> (FaultOutcome, bool) {
        if self.is_transparent() {
            return (FaultOutcome::Deliver(frame), false);
        }
        if rng.one_in(self.drop_one_in) {
            return (FaultOutcome::Drop, false);
        }
        let mut corrupted = false;
        let mut frame = frame;
        if rng.one_in(self.corrupt_one_in) && !frame.is_empty() {
            corrupted = true;
            let idx = rng.range(frame.len() as u64) as usize;
            // Flip a random bit so corruption is always a real change.
            let bit = 1u8 << rng.range(8);
            frame.mutate(|buf| buf[idx] ^= bit);
        }
        if rng.one_in(self.duplicate_one_in) {
            (FaultOutcome::Duplicate(frame), corrupted)
        } else {
            (FaultOutcome::Deliver(frame), corrupted)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transparent_by_default() {
        let cfg = FaultConfig::default();
        assert!(cfg.is_transparent());
        let mut rng = Xoshiro::seed_from_u64(1);
        let frame = FrameBuf::from_static(b"hello");
        assert_eq!(
            cfg.apply(frame.clone(), &mut rng),
            (FaultOutcome::Deliver(frame), false)
        );
    }

    #[test]
    fn always_drop() {
        let cfg = FaultConfig {
            drop_one_in: 1,
            ..Default::default()
        };
        let mut rng = Xoshiro::seed_from_u64(1);
        assert_eq!(
            cfg.apply(FrameBuf::from_static(b"x"), &mut rng),
            (FaultOutcome::Drop, false)
        );
    }

    #[test]
    fn corruption_changes_exactly_one_bit() {
        let cfg = FaultConfig {
            corrupt_one_in: 1,
            ..Default::default()
        };
        let mut rng = Xoshiro::seed_from_u64(3);
        let original = FrameBuf::from_static(b"abcdefgh");
        match cfg.apply(original.clone(), &mut rng) {
            (FaultOutcome::Deliver(out), corrupted) => {
                assert!(corrupted, "corruption must be reported");
                let diff_bits: u32 = original
                    .iter()
                    .zip(out.iter())
                    .map(|(a, b)| (a ^ b).count_ones())
                    .sum();
                assert_eq!(diff_bits, 1);
            }
            other => panic!("expected delivery, got {other:?}"),
        }
    }

    #[test]
    fn drop_rate_roughly_matches() {
        let cfg = FaultConfig {
            drop_one_in: 4,
            ..Default::default()
        };
        let mut rng = Xoshiro::seed_from_u64(5);
        let n = 10_000;
        let dropped = (0..n)
            .filter(|_| {
                matches!(
                    cfg.apply(FrameBuf::from_static(b"y"), &mut rng),
                    (FaultOutcome::Drop, _)
                )
            })
            .count();
        let rate = dropped as f64 / n as f64;
        assert!((0.22..0.28).contains(&rate), "rate was {rate}");
    }

    #[test]
    fn empty_frame_never_corrupted() {
        let cfg = FaultConfig {
            corrupt_one_in: 1,
            ..Default::default()
        };
        let mut rng = Xoshiro::seed_from_u64(6);
        match cfg.apply(FrameBuf::new(), &mut rng) {
            (FaultOutcome::Deliver(out), false) => assert!(out.is_empty()),
            other => panic!("unexpected {other:?}"),
        }
    }

    /// How many `next_u64` calls one `apply` consumed: replay the seed's
    /// stream until it lines up with the RNG state `apply` left behind.
    fn draws_consumed(cfg: &FaultConfig, frame: FrameBuf, seed: u64) -> u64 {
        let mut used = Xoshiro::seed_from_u64(seed);
        let _ = cfg.apply(frame, &mut used);
        let probe = used.next_u64();
        let mut reference = Xoshiro::seed_from_u64(seed);
        for consumed in 0..16 {
            if reference.next_u64() == probe {
                return consumed;
            }
        }
        panic!("apply consumed more than 15 draws");
    }

    /// The replay contract: the decision draws (drop, corrupt,
    /// duplicate) must not depend on the frame's contents. With all
    /// three knobs set but astronomically unlikely to fire, `apply`
    /// consumes exactly three draws for every frame length — including
    /// the degenerate empty and 1-byte frames.
    #[test]
    fn decision_draw_sequence_is_independent_of_frame_length() {
        let cfg = FaultConfig {
            drop_one_in: u64::MAX,
            corrupt_one_in: u64::MAX,
            duplicate_one_in: u64::MAX,
        };
        for frame in [
            FrameBuf::new(),
            FrameBuf::from_static(b"x"),
            FrameBuf::from_static(b"hello world"),
        ] {
            assert_eq!(draws_consumed(&cfg, frame, 123), 3);
        }
    }

    /// When the corrupt decision *fires*, an empty frame skips only the
    /// index/bit draws (nothing to flip) and is delivered unmodified,
    /// while a 1-byte frame takes them and gets exactly one bit flipped
    /// — and the duplicate decision still sees the stream position right
    /// after the corrupt decision in both cases.
    #[test]
    fn degenerate_frames_pin_the_corrupt_draws() {
        let cfg = FaultConfig {
            corrupt_one_in: 1,
            duplicate_one_in: 1,
            ..Default::default()
        };
        // Empty: corrupt decision (1 draw) + duplicate decision (1 draw).
        assert_eq!(draws_consumed(&cfg, FrameBuf::new(), 9), 2);
        match cfg.apply(FrameBuf::new(), &mut Xoshiro::seed_from_u64(9)) {
            (FaultOutcome::Duplicate(out), false) => assert!(out.is_empty()),
            other => panic!("unexpected {other:?}"),
        }
        // 1-byte: corrupt + index + bit + duplicate = 4 draws
        // (range(1) and range(8) are power-of-two bounds: no rejection).
        assert_eq!(draws_consumed(&cfg, FrameBuf::from_static(b"z"), 9), 4);
        match cfg.apply(FrameBuf::from_static(b"z"), &mut Xoshiro::seed_from_u64(9)) {
            (FaultOutcome::Duplicate(out), true) => {
                assert_eq!(out.len(), 1);
                assert_eq!((out[0] ^ b'z').count_ones(), 1);
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}
