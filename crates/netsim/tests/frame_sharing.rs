//! Frame-sharing semantics of the zero-copy plane: one wire frame is one
//! refcounted buffer shared by every listener, the capture log and fault
//! duplicates — and the only thing that can ever diverge a copy is the
//! explicit copy-on-write path (fault corruption, `FrameBuf::mutate`).

use netsim::{
    Ctx, FaultConfig, FrameBuf, Node, PortId, SegmentConfig, SimDuration, SimTime, TimerToken,
    World,
};

/// Sends one prebuilt frame and keeps its own handle to the buffer.
struct Sender {
    frame: FrameBuf,
}

impl Node for Sender {
    fn name(&self) -> &str {
        "sender"
    }
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        ctx.schedule(SimDuration::from_us(1), TimerToken(0));
    }
    fn on_frame(&mut self, _: &mut Ctx<'_>, _: PortId, _: FrameBuf) {}
    fn on_timer(&mut self, ctx: &mut Ctx<'_>, _: TimerToken) {
        ctx.send(PortId(0), self.frame.clone());
    }
    fn as_any(&self) -> &dyn core::any::Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn core::any::Any {
        self
    }
}

/// Stores every received frame; optionally scribbles on its own copy
/// through the copy-on-write path.
struct Keeper {
    got: Vec<FrameBuf>,
    scribble: bool,
}

impl Keeper {
    fn new(scribble: bool) -> Keeper {
        Keeper {
            got: Vec::new(),
            scribble,
        }
    }
}

impl Node for Keeper {
    fn name(&self) -> &str {
        "keeper"
    }
    fn on_frame(&mut self, _: &mut Ctx<'_>, _: PortId, mut frame: FrameBuf) {
        if self.scribble {
            frame.mutate(|buf| buf.iter_mut().for_each(|b| *b = 0xEE));
        }
        self.got.push(frame);
    }
    fn as_any(&self) -> &dyn core::any::Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn core::any::Any {
        self
    }
}

fn payload() -> FrameBuf {
    FrameBuf::from((0u8..200).collect::<Vec<u8>>())
}

fn build(fault: FaultConfig, scribble_first: bool) -> (World, netsim::SegId, Vec<netsim::NodeId>) {
    let mut world = World::new(7);
    let lan = world.add_segment(SegmentConfig {
        fault,
        capture: true,
        ..Default::default()
    });
    let s = world.add_node(Sender { frame: payload() });
    world.attach(s, lan);
    let listeners: Vec<_> = (0..3)
        .map(|i| {
            let id = world.add_node(Keeper::new(scribble_first && i == 0));
            world.attach(id, lan);
            id
        })
        .collect();
    world.run_until(SimTime::from_ms(1));
    (world, lan, listeners)
}

#[test]
fn clean_delivery_shares_one_buffer_with_capture() {
    let (world, lan, listeners) = build(FaultConfig::default(), false);
    let cap = world.segment(lan).captured();
    assert_eq!(cap.len(), 1);
    let frames: Vec<&FrameBuf> = listeners
        .iter()
        .map(|&l| &world.node::<Keeper>(l).got[0])
        .collect();
    for f in &frames {
        assert_eq!(**f, payload(), "delivered bytes intact");
        assert!(
            f.shares_storage(&cap[0].data),
            "every listener and the capture log share one allocation"
        );
    }
}

#[test]
fn corruption_is_isolated_from_the_sender_buffer() {
    let (world, lan, listeners) = build(
        FaultConfig {
            corrupt_one_in: 1,
            ..Default::default()
        },
        false,
    );
    // The sender still holds the pristine original.
    let frames: Vec<&FrameBuf> = listeners
        .iter()
        .map(|&l| &world.node::<Keeper>(l).got[0])
        .collect();
    let original = payload();
    for f in &frames {
        let diff: u32 = original
            .iter()
            .zip(f.iter())
            .map(|(a, b)| (a ^ b).count_ones())
            .sum();
        assert_eq!(diff, 1, "exactly one corrupted bit reaches the wire");
        assert!(
            !f.shares_storage(&original),
            "corruption must copy-on-write, never touch the original"
        );
        assert!(
            f.shares_storage(&world.segment(lan).captured()[0].data),
            "all listeners and the capture still share the corrupted copy"
        );
    }
}

#[test]
fn listener_mutation_never_leaks_to_other_listeners_or_capture() {
    let (world, lan, listeners) = build(FaultConfig::default(), true);
    let scribbler = &world.node::<Keeper>(listeners[0]).got[0];
    assert!(scribbler.iter().all(|&b| b == 0xEE), "scribble applied");
    let cap = &world.segment(lan).captured()[0].data;
    assert_eq!(*cap, payload(), "capture log unaffected by the scribble");
    for &l in &listeners[1..] {
        let f = &world.node::<Keeper>(l).got[0];
        assert_eq!(*f, payload(), "other listeners unaffected");
        assert!(f.shares_storage(cap), "untouched copies still share");
    }
}

#[test]
fn fault_duplicates_share_storage_with_each_other() {
    let (world, lan, listeners) = build(
        FaultConfig {
            duplicate_one_in: 1,
            ..Default::default()
        },
        false,
    );
    assert_eq!(
        world.segment(lan).counters().fault_duplicates,
        1,
        "the single frame was duplicated"
    );
    let keeper = world.node::<Keeper>(listeners[0]);
    assert_eq!(keeper.got.len(), 2, "listener saw both copies");
    assert!(
        keeper.got[0].shares_storage(&keeper.got[1]),
        "both fault copies share one allocation"
    );
}
