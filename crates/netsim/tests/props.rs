//! Property tests for the simulator substrate: time arithmetic, RNG
//! determinism, delivery ordering and conservation on segments.

use netsim::FrameBuf;
use netsim::{
    Ctx, FaultConfig, Node, PortId, SegmentConfig, SimDuration, SimTime, TimerToken, World, Xoshiro,
};
use proptest::prelude::*;

/// Sends `n` frames of `size` bytes at fixed intervals from start.
struct Sender {
    n: u32,
    size: usize,
    interval: SimDuration,
    sent: u32,
}

impl Node for Sender {
    fn name(&self) -> &str {
        "sender"
    }
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        ctx.schedule(SimDuration::from_ns(1), TimerToken(0));
    }
    fn on_frame(&mut self, _: &mut Ctx<'_>, _: PortId, _: FrameBuf) {}
    fn on_timer(&mut self, ctx: &mut Ctx<'_>, _: TimerToken) {
        if self.sent < self.n {
            // Tag each frame with its sequence number.
            let mut payload = vec![0u8; self.size.max(4)];
            payload[..4].copy_from_slice(&self.sent.to_be_bytes());
            ctx.send(PortId(0), FrameBuf::from(payload));
            self.sent += 1;
            ctx.schedule(self.interval, TimerToken(0));
        }
    }
    fn as_any(&self) -> &dyn core::any::Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn core::any::Any {
        self
    }
}

/// Records sequence numbers in arrival order.
#[derive(Default)]
struct Recorder {
    seen: Vec<u32>,
}

impl Node for Recorder {
    fn name(&self) -> &str {
        "recorder"
    }
    fn on_frame(&mut self, _: &mut Ctx<'_>, _: PortId, frame: FrameBuf) {
        self.seen
            .push(u32::from_be_bytes(frame[..4].try_into().unwrap()));
    }
    fn as_any(&self) -> &dyn core::any::Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn core::any::Any {
        self
    }
}

proptest! {
    /// FIFO: a shared segment never reorders one sender's frames, for
    /// any frame size/interval combination.
    #[test]
    fn segment_preserves_order(
        n in 1u32..60,
        size in 4usize..1500,
        interval_us in 1u64..500,
    ) {
        let mut world = World::new(1);
        let lan = world.add_segment(SegmentConfig::default());
        let s = world.add_node(Sender {
            n,
            size,
            interval: SimDuration::from_us(interval_us),
            sent: 0,
        });
        let r = world.add_node(Recorder::default());
        world.attach(s, lan);
        world.attach(r, lan);
        world.run_until(SimTime::from_secs(2));
        let seen = &world.node::<Recorder>(r).seen;
        prop_assert_eq!(seen.len(), n as usize);
        for (i, &v) in seen.iter().enumerate() {
            prop_assert_eq!(v, i as u32);
        }
    }

    /// Conservation under loss: delivered + dropped = sent, for any drop
    /// rate, and the run is deterministic per seed.
    #[test]
    fn fault_injection_conserves_frames(
        n in 1u32..80,
        drop_one_in in 1u64..10,
        seed in any::<u64>(),
    ) {
        let run = |seed: u64| {
            let mut world = World::new(seed);
            let lan = world.add_segment(SegmentConfig {
                fault: FaultConfig { drop_one_in, ..Default::default() },
                ..Default::default()
            });
            let s = world.add_node(Sender {
                n,
                size: 64,
                interval: SimDuration::from_us(100),
                sent: 0,
            });
            let r = world.add_node(Recorder::default());
            world.attach(s, lan);
            world.attach(r, lan);
            world.run_until(SimTime::from_secs(1));
            let delivered = world.node::<Recorder>(r).seen.len() as u64;
            let dropped = world.segment(lan).counters().fault_drops;
            (delivered, dropped)
        };
        let (delivered, dropped) = run(seed);
        prop_assert_eq!(delivered + dropped, n as u64);
        prop_assert_eq!(run(seed), (delivered, dropped), "deterministic per seed");
    }

    /// SimTime/SimDuration arithmetic is consistent.
    #[test]
    fn time_arithmetic(a in 0u64..u32::MAX as u64, b in 0u64..u32::MAX as u64) {
        let t = SimTime::from_ns(a);
        let d = SimDuration::from_ns(b);
        prop_assert_eq!((t + d) - t, d);
        prop_assert_eq!((t + d).saturating_since(t), d);
        prop_assert_eq!(t.saturating_since(t + d), SimDuration::ZERO);
    }

    /// Serialization time is monotone in size and inversely monotone in
    /// bandwidth.
    #[test]
    fn serialization_monotone(
        len_a in 0usize..10_000,
        len_b in 0usize..10_000,
        bw in 1_000_000u64..1_000_000_000,
    ) {
        let (small, large) = if len_a <= len_b { (len_a, len_b) } else { (len_b, len_a) };
        prop_assert!(
            SimDuration::serialization(small, bw) <= SimDuration::serialization(large, bw)
        );
        prop_assert!(
            SimDuration::serialization(large, bw * 2) <= SimDuration::serialization(large, bw)
        );
    }

    /// The RNG's range() is unbiased enough to hit all buckets and stays
    /// in bounds.
    #[test]
    fn rng_range_bounds(seed in any::<u64>(), bound in 1u64..1000) {
        let mut rng = Xoshiro::seed_from_u64(seed);
        for _ in 0..100 {
            prop_assert!(rng.range(bound) < bound);
        }
    }
}
