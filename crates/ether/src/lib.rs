//! # ether — Ethernet wire formats
//!
//! MAC addressing (including the 802.1D "All Bridges" and DEC bridge group
//! addresses the paper's spanning-tree switchlets use), Ethernet II / 802.3
//! framing with parse/emit in the smoltcp idiom, the 802.2 LLC header that
//! carries BPDUs, and the IEEE CRC-32 frame check sequence.
//!
//! ```
//! use ether::{EtherType, Frame, FrameBuilder, MacAddr};
//!
//! let frame = FrameBuilder::new(MacAddr::BROADCAST, MacAddr::local(1), EtherType::IPV4)
//!     .payload(b"hello lan")
//!     .build();
//! let parsed = Frame::parse(&frame).unwrap();
//! assert!(parsed.dst().is_broadcast());
//! assert_eq!(parsed.ethertype(), EtherType::IPV4);
//! ```

pub mod crc;
pub mod ethertype;
pub mod frame;
pub mod llc;
pub mod mac;

pub use crc::{append_fcs, check_fcs, crc32};
pub use ethertype::EtherType;
pub use frame::{Frame, FrameBuilder, FrameError, HEADER_LEN, MAX_FRAME, MAX_PAYLOAD, MIN_FRAME};
pub use llc::Llc;
pub use mac::MacAddr;
