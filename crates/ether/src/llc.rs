//! IEEE 802.2 LLC header.
//!
//! 802.1D BPDUs travel in 802.3 frames whose payload begins with the LLC
//! header `DSAP=0x42, SSAP=0x42, control=0x03` (unnumbered information).

/// LLC header length.
pub const LLC_LEN: usize = 3;

/// The bridge spanning-tree SAP.
pub const SAP_BRIDGE: u8 = 0x42;

/// Unnumbered-information control field.
pub const CTRL_UI: u8 = 0x03;

/// An LLC header.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct Llc {
    /// Destination service access point.
    pub dsap: u8,
    /// Source service access point.
    pub ssap: u8,
    /// Control field.
    pub control: u8,
}

impl Llc {
    /// The header that carries 802.1D BPDUs.
    pub const BPDU: Llc = Llc {
        dsap: SAP_BRIDGE,
        ssap: SAP_BRIDGE,
        control: CTRL_UI,
    };

    /// Parse the header; returns it and the remaining payload.
    pub fn parse(buf: &[u8]) -> Option<(Llc, &[u8])> {
        if buf.len() < LLC_LEN {
            return None;
        }
        Some((
            Llc {
                dsap: buf[0],
                ssap: buf[1],
                control: buf[2],
            },
            &buf[LLC_LEN..],
        ))
    }

    /// Emit the header followed by `payload`.
    pub fn wrap(&self, payload: &[u8]) -> Vec<u8> {
        let mut out = Vec::with_capacity(LLC_LEN + payload.len());
        out.push(self.dsap);
        out.push(self.ssap);
        out.push(self.control);
        out.extend_from_slice(payload);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wrap_parse_roundtrip() {
        let wrapped = Llc::BPDU.wrap(b"bpdu body");
        let (llc, rest) = Llc::parse(&wrapped).unwrap();
        assert_eq!(llc, Llc::BPDU);
        assert_eq!(rest, b"bpdu body");
    }

    #[test]
    fn short_buffer_rejected() {
        assert!(Llc::parse(&[0x42, 0x42]).is_none());
    }
}
