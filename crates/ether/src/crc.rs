//! IEEE 802.3 CRC-32 (the Ethernet frame check sequence).
//!
//! The paper notes a quirk of its Linux substrate: "The CRC is returned on a
//! read, but cannot be specified on a write. (This is one of our 802.1D
//! incompatibilities.)" We implement the real algorithm so frames can carry
//! and validate an FCS when an experiment wants one; the simulated frames
//! normally omit it (the segment charges 4 octets of FCS as wire overhead
//! instead).

/// Reflected CRC-32 with polynomial 0xEDB88320 (IEEE 802.3), processed via
/// a table generated at first use.
fn table() -> &'static [u32; 256] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, entry) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            *entry = c;
        }
        t
    })
}

/// Compute the Ethernet FCS over `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let t = table();
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        c = t[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

/// Append the FCS (little-endian, as transmitted on Ethernet) to a frame.
pub fn append_fcs(frame: &mut Vec<u8>) {
    let fcs = crc32(frame);
    frame.extend_from_slice(&fcs.to_le_bytes());
}

/// Check a frame that ends in an FCS; returns the payload without the FCS
/// if valid.
pub fn check_fcs(frame: &[u8]) -> Option<&[u8]> {
    if frame.len() < 4 {
        return None;
    }
    let (body, fcs_bytes) = frame.split_at(frame.len() - 4);
    let want = u32::from_le_bytes(fcs_bytes.try_into().unwrap());
    if crc32(body) == want {
        Some(body)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vector() {
        // The classic check value: CRC32("123456789") = 0xCBF43926.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn empty_input() {
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn append_then_check_roundtrip() {
        let mut frame = b"some ethernet frame body".to_vec();
        append_fcs(&mut frame);
        assert_eq!(check_fcs(&frame), Some(&b"some ethernet frame body"[..]));
    }

    #[test]
    fn corruption_detected() {
        let mut frame = b"payload".to_vec();
        append_fcs(&mut frame);
        frame[2] ^= 0x10;
        assert_eq!(check_fcs(&frame), None);
    }

    #[test]
    fn short_frame_rejected() {
        assert_eq!(check_fcs(&[1, 2, 3]), None);
    }
}
