//! Ethernet II / 802.3 framing.
//!
//! Parse/emit in the smoltcp idiom: [`Frame`] wraps a borrowed byte slice
//! and exposes typed accessors after a length check; [`FrameBuilder`]
//! assembles a new frame into an owned buffer. Frames in this reproduction
//! carry no FCS (the simulated segment charges FCS as wire overhead); the
//! [`crate::crc`] module is available when an experiment wants a real FCS.

use bytes::Bytes;

use crate::ethertype::EtherType;
use crate::mac::MacAddr;

/// Destination(6) + source(6) + type(2).
pub const HEADER_LEN: usize = 14;
/// Minimum Ethernet payload (frames are padded to this).
pub const MIN_PAYLOAD: usize = 46;
/// Maximum standard Ethernet payload.
pub const MAX_PAYLOAD: usize = 1500;
/// Maximum frame size without FCS.
pub const MAX_FRAME: usize = HEADER_LEN + MAX_PAYLOAD;
/// Minimum frame size without FCS.
pub const MIN_FRAME: usize = HEADER_LEN + MIN_PAYLOAD;

/// Errors from [`Frame::parse`].
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum FrameError {
    /// Shorter than the 14-byte header.
    Truncated,
    /// Longer than the 1514-byte maximum.
    Oversized,
}

impl core::fmt::Display for FrameError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            FrameError::Truncated => write!(f, "frame shorter than Ethernet header"),
            FrameError::Oversized => write!(f, "frame exceeds Ethernet maximum"),
        }
    }
}

impl std::error::Error for FrameError {}

/// A parsed view over an Ethernet frame.
#[derive(Copy, Clone, Debug)]
pub struct Frame<'a> {
    buf: &'a [u8],
}

impl<'a> Frame<'a> {
    /// Validate the length and wrap the buffer.
    #[inline]
    pub fn parse(buf: &'a [u8]) -> Result<Frame<'a>, FrameError> {
        if buf.len() < HEADER_LEN {
            return Err(FrameError::Truncated);
        }
        if buf.len() > MAX_FRAME {
            return Err(FrameError::Oversized);
        }
        Ok(Frame { buf })
    }

    /// Destination address.
    #[inline]
    pub fn dst(&self) -> MacAddr {
        MacAddr::from_slice(&self.buf[0..6]).unwrap()
    }

    /// Source address.
    #[inline]
    pub fn src(&self) -> MacAddr {
        MacAddr::from_slice(&self.buf[6..12]).unwrap()
    }

    /// The type/length field.
    #[inline]
    pub fn ethertype(&self) -> EtherType {
        EtherType(u16::from_be_bytes([self.buf[12], self.buf[13]]))
    }

    /// The payload after the header. For 802.3 (length-typed) frames this
    /// trims trailing pad octets using the length field.
    #[inline]
    pub fn payload(&self) -> &'a [u8] {
        let ty = self.ethertype();
        let body = &self.buf[HEADER_LEN..];
        if ty.is_length() {
            let len = (ty.0 as usize).min(body.len());
            &body[..len]
        } else {
            body
        }
    }

    /// The whole frame.
    #[inline]
    pub fn as_bytes(&self) -> &'a [u8] {
        self.buf
    }

    /// Total frame length.
    #[inline]
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Frames are never empty once parsed.
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }
}

/// Assemble an Ethernet frame.
///
/// The builder writes the header into its single output buffer up front
/// and [`FrameBuilder::payload`] appends directly behind it, so building
/// a frame performs exactly one copy of the payload bytes and one
/// allocation — the build-once point of the zero-copy frame plane
/// (everything downstream shares the resulting buffer by refcount).
#[derive(Debug)]
pub struct FrameBuilder {
    /// Header followed by payload; the type field is patched at build
    /// time for LLC frames.
    buf: Vec<u8>,
    llc: bool,
    pad: bool,
}

impl FrameBuilder {
    fn with_header(dst: MacAddr, src: MacAddr, ethertype: EtherType, llc: bool) -> Self {
        let mut buf = Vec::with_capacity(MIN_FRAME);
        buf.extend_from_slice(&dst.octets());
        buf.extend_from_slice(&src.octets());
        buf.extend_from_slice(&ethertype.0.to_be_bytes());
        FrameBuilder {
            buf,
            llc,
            pad: true,
        }
    }

    /// Start a frame with the given addressing and type.
    pub fn new(dst: MacAddr, src: MacAddr, ethertype: EtherType) -> Self {
        FrameBuilder::with_header(dst, src, ethertype, false)
    }

    /// An 802.3 frame whose type field is the payload length (LLC framing,
    /// used by 802.1D BPDUs). The length is filled in at [`build`] time.
    ///
    /// [`build`]: FrameBuilder::build
    pub fn new_llc(dst: MacAddr, src: MacAddr) -> Self {
        FrameBuilder::with_header(dst, src, EtherType(0), true)
    }

    /// Set the payload (replacing any payload set earlier).
    pub fn payload(mut self, payload: &[u8]) -> Self {
        self.buf.truncate(HEADER_LEN);
        // Reserve the final frame size (including any pad to the Ethernet
        // minimum) so building stays a single allocation.
        let total = (HEADER_LEN + payload.len()).max(MIN_FRAME);
        self.buf.reserve(total - self.buf.len());
        self.buf.extend_from_slice(payload);
        self
    }

    /// Disable padding to the 60-byte Ethernet minimum (for tests that want
    /// exact frame contents).
    pub fn no_pad(mut self) -> Self {
        self.pad = false;
        self
    }

    /// Emit the frame.
    ///
    /// Panics if the payload exceeds [`MAX_PAYLOAD`]; the caller is
    /// expected to have segmented above this layer (the paper's bridge
    /// cannot fragment either — bridges must not modify frames).
    pub fn build(self) -> Bytes {
        let mut buf = self.buf;
        let payload_len = buf.len() - HEADER_LEN;
        assert!(
            payload_len <= MAX_PAYLOAD,
            "payload {payload_len} exceeds Ethernet maximum {MAX_PAYLOAD}"
        );
        if self.llc {
            buf[12..HEADER_LEN].copy_from_slice(&(payload_len as u16).to_be_bytes());
        }
        if self.pad && buf.len() < MIN_FRAME {
            buf.resize(MIN_FRAME, 0);
        }
        Bytes::from(buf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_parse_roundtrip() {
        let dst = MacAddr::local(1);
        let src = MacAddr::local(2);
        let frame = FrameBuilder::new(dst, src, EtherType::IPV4)
            .payload(b"datagram goes here, long enough not to matter")
            .build();
        let parsed = Frame::parse(&frame).unwrap();
        assert_eq!(parsed.dst(), dst);
        assert_eq!(parsed.src(), src);
        assert_eq!(parsed.ethertype(), EtherType::IPV4);
        assert!(parsed
            .payload()
            .starts_with(b"datagram goes here, long enough not to matter"));
    }

    #[test]
    fn short_payload_padded_to_minimum() {
        let frame = FrameBuilder::new(MacAddr::local(1), MacAddr::local(2), EtherType::IPV4)
            .payload(b"x")
            .build();
        assert_eq!(frame.len(), MIN_FRAME);
    }

    #[test]
    fn llc_frame_sets_length_and_trims_pad() {
        let bpdu = [0x42u8, 0x42, 0x03, 1, 2, 3];
        let frame = FrameBuilder::new_llc(MacAddr::ALL_BRIDGES, MacAddr::local(9))
            .payload(&bpdu)
            .build();
        assert_eq!(frame.len(), MIN_FRAME); // padded
        let parsed = Frame::parse(&frame).unwrap();
        assert!(parsed.ethertype().is_length());
        assert_eq!(parsed.payload(), &bpdu); // pad trimmed by length field
    }

    #[test]
    fn truncated_rejected() {
        assert!(matches!(
            Frame::parse(&[0u8; 13]),
            Err(FrameError::Truncated)
        ));
    }

    #[test]
    fn oversized_rejected() {
        let buf = vec![0u8; MAX_FRAME + 1];
        assert!(matches!(Frame::parse(&buf), Err(FrameError::Oversized)));
    }

    #[test]
    #[should_panic(expected = "exceeds Ethernet maximum")]
    fn oversized_build_panics() {
        let _ = FrameBuilder::new(MacAddr::local(1), MacAddr::local(2), EtherType::IPV4)
            .payload(&vec![0u8; MAX_PAYLOAD + 1])
            .build();
    }
}
