//! MAC (IEEE 802) addresses and the well-known group addresses the paper's
//! protocols use.

use core::fmt;
use core::str::FromStr;

/// A 48-bit IEEE 802 MAC address.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct MacAddr(pub [u8; 6]);

impl MacAddr {
    /// The broadcast address `ff:ff:ff:ff:ff:ff`.
    pub const BROADCAST: MacAddr = MacAddr([0xff; 6]);

    /// The all-zero address (never valid on the wire).
    pub const ZERO: MacAddr = MacAddr([0; 6]);

    /// The 802.1D "All Bridges" group address `01:80:c2:00:00:00` — the
    /// destination of IEEE spanning-tree BPDUs. The paper's third switchlet
    /// "registers with the demultiplexer requesting packets addressed to
    /// the All Bridges multicast address".
    pub const ALL_BRIDGES: MacAddr = MacAddr([0x01, 0x80, 0xc2, 0x00, 0x00, 0x00]);

    /// The DEC bridge-management group address `09:00:2b:01:00:00` — the
    /// destination the paper's modified ("old protocol") switchlet sends
    /// DEC-style spanning tree packets to.
    pub const DEC_BRIDGES: MacAddr = MacAddr([0x09, 0x00, 0x2b, 0x01, 0x00, 0x00]);

    /// Construct from raw octets.
    pub const fn new(octets: [u8; 6]) -> MacAddr {
        MacAddr(octets)
    }

    /// A deterministic locally-administered unicast address derived from an
    /// index — handy for assigning simulated NIC addresses.
    pub const fn local(index: u32) -> MacAddr {
        let b = index.to_be_bytes();
        // 0x02 = locally administered, unicast.
        MacAddr([0x02, 0x00, b[0], b[1], b[2], b[3]])
    }

    /// The raw octets.
    #[inline]
    pub const fn octets(self) -> [u8; 6] {
        self.0
    }

    /// True for group (multicast or broadcast) addresses: I/G bit set.
    #[inline]
    pub const fn is_multicast(self) -> bool {
        self.0[0] & 0x01 != 0
    }

    /// True only for `ff:ff:ff:ff:ff:ff`.
    #[inline]
    pub fn is_broadcast(self) -> bool {
        self == Self::BROADCAST
    }

    /// True for a unicast (individual) address.
    pub const fn is_unicast(self) -> bool {
        !self.is_multicast()
    }

    /// Parse from a byte slice. Returns `None` unless exactly 6 bytes.
    #[inline]
    pub fn from_slice(bytes: &[u8]) -> Option<MacAddr> {
        let arr: [u8; 6] = bytes.try_into().ok()?;
        Some(MacAddr(arr))
    }
}

impl fmt::Display for MacAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let o = self.0;
        write!(
            f,
            "{:02x}:{:02x}:{:02x}:{:02x}:{:02x}:{:02x}",
            o[0], o[1], o[2], o[3], o[4], o[5]
        )
    }
}

/// Error from [`MacAddr::from_str`].
#[derive(Debug, PartialEq, Eq)]
pub struct ParseMacError;

impl fmt::Display for ParseMacError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid MAC address syntax")
    }
}

impl std::error::Error for ParseMacError {}

impl FromStr for MacAddr {
    type Err = ParseMacError;

    /// Parses `aa:bb:cc:dd:ee:ff` (also accepts `-` separators).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut octets = [0u8; 6];
        let mut parts = s.split([':', '-']);
        for slot in &mut octets {
            let part = parts.next().ok_or(ParseMacError)?;
            *slot = u8::from_str_radix(part, 16).map_err(|_| ParseMacError)?;
        }
        if parts.next().is_some() {
            return Err(ParseMacError);
        }
        Ok(MacAddr(octets))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_bits() {
        assert!(MacAddr::BROADCAST.is_multicast());
        assert!(MacAddr::BROADCAST.is_broadcast());
        assert!(MacAddr::ALL_BRIDGES.is_multicast());
        assert!(!MacAddr::ALL_BRIDGES.is_broadcast());
        assert!(MacAddr::DEC_BRIDGES.is_multicast());
        assert!(MacAddr::local(7).is_unicast());
    }

    #[test]
    fn local_addresses_are_distinct() {
        assert_ne!(MacAddr::local(1), MacAddr::local(2));
        assert_eq!(MacAddr::local(1), MacAddr::local(1));
    }

    #[test]
    fn display_roundtrip() {
        let m = MacAddr::new([0xde, 0xad, 0xbe, 0xef, 0x00, 0x42]);
        let s = m.to_string();
        assert_eq!(s, "de:ad:be:ef:00:42");
        assert_eq!(s.parse::<MacAddr>().unwrap(), m);
    }

    #[test]
    fn parse_dash_separated() {
        assert_eq!(
            "01-80-c2-00-00-00".parse::<MacAddr>().unwrap(),
            MacAddr::ALL_BRIDGES
        );
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!("1:2:3".parse::<MacAddr>().is_err());
        assert!("zz:00:00:00:00:00".parse::<MacAddr>().is_err());
        assert!("00:00:00:00:00:00:00".parse::<MacAddr>().is_err());
    }

    #[test]
    fn from_slice_checks_length() {
        assert_eq!(MacAddr::from_slice(&[1, 2, 3]), None);
        assert_eq!(
            MacAddr::from_slice(&[1, 2, 3, 4, 5, 6]),
            Some(MacAddr::new([1, 2, 3, 4, 5, 6]))
        );
    }
}
