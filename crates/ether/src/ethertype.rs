//! EtherType values.
//!
//! The paper's lowest loader layer "demultiplexes these frames based on the
//! Ethernet protocol identifier" — this module is that identifier space.

use core::fmt;

/// A 16-bit EtherType (or, for values < 1536, an 802.3 length — which this
/// reproduction treats as LLC-framed).
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct EtherType(pub u16);

impl EtherType {
    /// IPv4.
    pub const IPV4: EtherType = EtherType(0x0800);
    /// ARP.
    pub const ARP: EtherType = EtherType(0x0806);
    /// Frames whose type field is an 802.3 length and whose payload starts
    /// with an LLC header — how 802.1D BPDUs travel.
    pub const LLC_THRESHOLD: u16 = 0x0600;
    /// The DEC LANbridge spanning-tree protocol ("DEC MOP"-adjacent; the
    /// paper only requires an *incompatible* format, see footnote 4).
    pub const DEC_STP: EtherType = EtherType(0x8038);
    /// Local experimental type used by this reproduction's measurement
    /// probes (never forwarded differently from data).
    pub const EXPERIMENTAL: EtherType = EtherType(0x88B5);

    /// True if this value is really an 802.3 length field.
    #[inline]
    pub const fn is_length(self) -> bool {
        self.0 < Self::LLC_THRESHOLD
    }
}

impl fmt::Display for EtherType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            EtherType::IPV4 => write!(f, "IPv4"),
            EtherType::ARP => write!(f, "ARP"),
            EtherType::DEC_STP => write!(f, "DEC-STP"),
            EtherType(v) if v < EtherType::LLC_THRESHOLD => write!(f, "802.3-len({v})"),
            EtherType(v) => write!(f, "0x{v:04x}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn length_vs_type() {
        assert!(EtherType(100).is_length());
        assert!(EtherType(0x05ff).is_length());
        assert!(!EtherType::IPV4.is_length());
    }

    #[test]
    fn display() {
        assert_eq!(EtherType::IPV4.to_string(), "IPv4");
        assert_eq!(EtherType(0x9000).to_string(), "0x9000");
        assert_eq!(EtherType(38).to_string(), "802.3-len(38)");
    }
}
