//! Property tests for the Ethernet wire formats.

use ether::{crc32, frame, EtherType, Frame, FrameBuilder, Llc, MacAddr};
use proptest::prelude::*;

fn arb_mac() -> impl Strategy<Value = MacAddr> {
    any::<[u8; 6]>().prop_map(MacAddr::new)
}

proptest! {
    /// Build→parse is the identity on addressing, type, and payload
    /// prefix (padding may extend short payloads).
    #[test]
    fn frame_roundtrip(
        dst in arb_mac(),
        src in arb_mac(),
        ty in 0x0600u16..=0xFFFF,
        payload in prop::collection::vec(any::<u8>(), 0..frame::MAX_PAYLOAD),
    ) {
        let built = FrameBuilder::new(dst, src, EtherType(ty))
            .payload(&payload)
            .build();
        let parsed = Frame::parse(&built).unwrap();
        prop_assert_eq!(parsed.dst(), dst);
        prop_assert_eq!(parsed.src(), src);
        prop_assert_eq!(parsed.ethertype(), EtherType(ty));
        prop_assert!(parsed.payload().starts_with(&payload));
        prop_assert!(built.len() >= frame::MIN_FRAME);
        prop_assert!(built.len() <= frame::MAX_FRAME);
    }

    /// LLC-framed (802.3) payloads come back exactly, pad-trimmed.
    #[test]
    fn llc_frame_roundtrip(
        dst in arb_mac(),
        src in arb_mac(),
        payload in prop::collection::vec(any::<u8>(), 0..1000),
    ) {
        let built = FrameBuilder::new_llc(dst, src).payload(&payload).build();
        let parsed = Frame::parse(&built).unwrap();
        prop_assert!(parsed.ethertype().is_length());
        prop_assert_eq!(parsed.payload(), &payload[..]);
    }

    /// CRC-32 detects every single-bit flip.
    #[test]
    fn crc_detects_single_bit_flips(
        data in prop::collection::vec(any::<u8>(), 1..256),
        bit in 0usize..2048,
    ) {
        let c = crc32(&data);
        let mut mutated = data.clone();
        let idx = (bit / 8) % mutated.len();
        mutated[idx] ^= 1 << (bit % 8);
        prop_assert_ne!(c, crc32(&mutated));
    }

    /// MAC display→parse is the identity.
    #[test]
    fn mac_display_roundtrip(mac in arb_mac()) {
        let s = mac.to_string();
        prop_assert_eq!(s.parse::<MacAddr>().unwrap(), mac);
    }

    /// LLC wrap→parse is the identity.
    #[test]
    fn llc_wrap_roundtrip(
        dsap in any::<u8>(),
        ssap in any::<u8>(),
        control in any::<u8>(),
        body in prop::collection::vec(any::<u8>(), 0..128),
    ) {
        let llc = Llc { dsap, ssap, control };
        let wrapped = llc.wrap(&body);
        let (parsed, rest) = Llc::parse(&wrapped).unwrap();
        prop_assert_eq!(parsed, llc);
        prop_assert_eq!(rest, &body[..]);
    }

    /// The parser never panics on arbitrary bytes.
    #[test]
    fn parse_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..2000)) {
        let _ = Frame::parse(&bytes);
        let _ = Llc::parse(&bytes);
        let _ = ether::check_fcs(&bytes);
    }
}
